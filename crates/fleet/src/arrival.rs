//! Deterministic, seed-driven arrival processes.
//!
//! Two regimes cover the evaluation space of datacenter co-scheduling
//! work (Octopus-Man's latency-critical streams, Hipster's mixed QoS
//! traffic): an open-loop Poisson process (independent tenants) and a
//! bursty regime that replays coordinated traffic spikes — a trace-like
//! pattern of Poisson burst starts, each releasing a volley of jobs.
//! Same seed ⇒ byte-identical stream.
//!
//! Streams can be consumed two ways. The batch path
//! ([`ArrivalProcess::generate`]) materialises a `Vec<JobSpec>`. The
//! resident path pulls jobs one at a time through an [`ArrivalCursor`]
//! — [`GenCursor`] regenerates the *exact same* sequence lazily in
//! O(1) memory (traffic warps applied per pull), [`SliceCursor`] wraps
//! a materialised slice, and [`TraceCursor`] streams a line-delimited
//! external trace file. Cursor positions are checkpointable
//! ([`ArrivalCursor::save`]), which is what lets the resident kernel
//! resume mid-stream bit-identically.

use crate::chaos::{traffic_breakpoints, TrafficClause};
use crate::checkpoint::{CheckpointError, CursorState};
use crate::job::{taxon_of, JobClass, JobSpec, Taxon};
use astro_workloads::{InputSize, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};

/// How jobs arrive over time.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Open-loop Poisson: exponential inter-arrival times at `rate`
    /// jobs per second.
    Poisson {
        /// Mean arrival rate, jobs per second.
        rate_jobs_per_s: f64,
    },
    /// Bursty replay: burst starts form a Poisson process of rate
    /// `rate / burst`, and each burst releases `burst` jobs spread
    /// uniformly over `spread_s` seconds. The long-run rate matches the
    /// Poisson regime; the short-run pressure does not.
    Bursty {
        /// Long-run mean arrival rate, jobs per second.
        rate_jobs_per_s: f64,
        /// Jobs per burst.
        burst: usize,
        /// Width of one burst, seconds.
        spread_s: f64,
    },
}

impl ArrivalProcess {
    /// Label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }

    /// Generate `n` jobs drawn uniformly from `pool`, with arrival times
    /// from this process and SLO tightness uniform in `slo_tightness`.
    /// Everything is a pure function of `seed`.
    ///
    /// # Panics
    ///
    /// The tightness range must be positive and finite: every job's SLO
    /// is `tightness × best-cold-wall`, and a non-positive SLO would
    /// otherwise flow through the metrics layer as a ratio of 0.0 —
    /// silently sorting as the *best* p99 latency/SLO ratio in the
    /// fleet. Rejected here, at stream construction, in the same spirit
    /// as the kernel's churn/chaos schedule validation.
    pub fn generate(
        &self,
        n: usize,
        pool: &[Workload],
        size: InputSize,
        slo_tightness: (f64, f64),
        seed: u64,
    ) -> Vec<JobSpec> {
        validate_stream(pool, slo_tightness);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA1217_F1EE7);
        // Classify each pool entry once (module construction is not free).
        let taxa: Vec<Taxon> = pool.iter().map(|w| taxon_of(&(w.build)(size))).collect();

        let mut arrivals = self.arrival_times(n, &mut rng);
        arrivals.sort_by(f64::total_cmp);

        arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival_s)| {
                let k = rng.gen_range(0..pool.len());
                let (lo, hi) = slo_tightness;
                let slo = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                JobSpec {
                    id: i as u32,
                    workload: pool[k],
                    taxon: taxa[k],
                    arrival_s,
                    slo_tightness: slo,
                    seed: seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64),
                }
            })
            .collect()
    }

    /// [`generate`](Self::generate), then warp arrival times through a
    /// set of chaos [`TrafficClause`]s (flash crowds, diurnal swell).
    ///
    /// The warp is an inverse-CDF redistribution over the piecewise-
    /// constant intensity the clauses describe: job count, stream order,
    /// per-job workload/SLO/seed draws and the horizon (last arrival)
    /// are all preserved — only *when* each job lands moves, with
    /// proportionally more of the stream concentrated where the
    /// intensity multiplier is high. With no clauses the stream is
    /// byte-identical to [`generate`](Self::generate)'s.
    pub fn generate_shaped(
        &self,
        n: usize,
        pool: &[Workload],
        size: InputSize,
        slo_tightness: (f64, f64),
        seed: u64,
        traffic: &[TrafficClause],
    ) -> Vec<JobSpec> {
        let mut jobs = self.generate(n, pool, size, slo_tightness, seed);
        if traffic.is_empty() || jobs.is_empty() {
            return jobs;
        }
        let horizon = jobs.last().unwrap().arrival_s;
        if horizon <= 0.0 {
            return jobs;
        }
        // Piecewise-constant multiplier m(u) over horizon fraction
        // u ∈ [0, 1], as (start, multiplier) segments; cumulative
        // weight table W so W[j] = ∫₀^{segs[j].0} m.
        let segs = traffic_breakpoints(traffic);
        let mut cum = Vec::with_capacity(segs.len() + 1);
        cum.push(0.0);
        for j in 0..segs.len() {
            let end = if j + 1 < segs.len() {
                segs[j + 1].0
            } else {
                1.0
            };
            cum.push(cum[j] + segs[j].1 * (end - segs[j].0));
        }
        let total = *cum.last().unwrap();
        // Each original time maps through W⁻¹: the fraction of jobs a
        // window [a, b] receives becomes (W(b) − W(a)) / W(1). Times
        // are sorted and the map is monotone, so one forward pointer
        // suffices and the stream stays sorted.
        let mut j = 0;
        for job in &mut jobs {
            let target = (job.arrival_s / horizon).clamp(0.0, 1.0) * total;
            if target >= total {
                // The stream's last arrival defines the horizon; pin it
                // exactly rather than round-tripping through W⁻¹.
                job.arrival_s = horizon;
                continue;
            }
            while j + 1 < segs.len() && cum[j + 1] <= target {
                j += 1;
            }
            let q = segs[j].0 + (target - cum[j]) / segs[j].1;
            job.arrival_s = (q * horizon).min(horizon);
        }
        jobs
    }

    fn arrival_times(&self, n: usize, rng: &mut SmallRng) -> Vec<f64> {
        let mut times = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate_jobs_per_s } => {
                assert!(rate_jobs_per_s > 0.0);
                let mut t = 0.0;
                for _ in 0..n {
                    t += exponential(rng, rate_jobs_per_s);
                    times.push(t);
                }
            }
            ArrivalProcess::Bursty {
                rate_jobs_per_s,
                burst,
                spread_s,
            } => {
                assert!(rate_jobs_per_s > 0.0 && burst > 0);
                let burst_rate = rate_jobs_per_s / burst as f64;
                let mut t = 0.0;
                while times.len() < n {
                    t += exponential(rng, burst_rate);
                    for _ in 0..burst.min(n - times.len()) {
                        times.push(t + rng.gen_range(0.0..spread_s.max(1e-9)));
                    }
                }
            }
        }
        times
    }
}

/// Exponential variate with the given rate, by inversion.
fn exponential(rng: &mut SmallRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / rate
}

/// Shared stream validation (batch and cursor construction): non-empty
/// pool, positive finite ordered SLO tightness.
fn validate_stream(pool: &[Workload], slo_tightness: (f64, f64)) {
    assert!(!pool.is_empty(), "workload pool must not be empty");
    let (lo, hi) = slo_tightness;
    assert!(
        lo > 0.0 && lo.is_finite() && hi.is_finite() && hi >= lo,
        "invalid arrival stream: SLO tightness range ({lo}, {hi}) must be positive, \
         finite and ordered — a job with slo_s <= 0 can never meet its deadline and \
         would corrupt the SLO-ratio metrics"
    );
}

/// A pull-based job stream: the resident kernel's replacement for a
/// materialised `Vec<JobSpec>`. Implementations promise that the pull
/// sequence is **bitwise identical** to the batch sequence the same
/// configuration would have materialised (ids, arrival times, seeds,
/// SLO draws — everything), and that a [`save`](ArrivalCursor::save)d
/// position restored with [`load`](ArrivalCursor::load) resumes that
/// exact sequence.
pub trait ArrivalCursor {
    /// Pulls the next job, or `None` when the stream is exhausted.
    fn next_job(&mut self) -> Option<JobSpec>;

    /// Total jobs this stream delivers over its lifetime.
    fn total(&self) -> usize;

    /// Jobs already pulled.
    fn position(&self) -> usize;

    /// The distinct workloads the stream can emit, first-appearance
    /// order (the kernel compiles stock binaries and calibrates replay
    /// tiers for exactly these).
    fn workloads(&self) -> Vec<Workload>;

    /// Snapshots the stream position for a checkpoint.
    fn save(&self) -> CursorState;

    /// Restores a [`save`](ArrivalCursor::save)d position. Structurally
    /// impossible states (position past the end, oversized merge heap)
    /// are rejected with a [`CheckpointError`], never applied.
    fn load(&mut self, s: &CursorState) -> Result<(), CheckpointError>;
}

/// An [`ArrivalCursor`] over an already-materialised job slice — the
/// adapter that runs the batch entry points through the resident
/// kernel, so both paths share one loop.
pub struct SliceCursor<'a> {
    jobs: &'a [JobSpec],
    pos: usize,
}

impl<'a> SliceCursor<'a> {
    /// Wraps a materialised stream.
    pub fn new(jobs: &'a [JobSpec]) -> Self {
        SliceCursor { jobs, pos: 0 }
    }
}

impl ArrivalCursor for SliceCursor<'_> {
    fn next_job(&mut self) -> Option<JobSpec> {
        let j = self.jobs.get(self.pos).copied()?;
        self.pos += 1;
        Some(j)
    }

    fn total(&self) -> usize {
        self.jobs.len()
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn workloads(&self) -> Vec<Workload> {
        let mut out: Vec<Workload> = Vec::new();
        for j in self.jobs {
            if !out.iter().any(|w| w.name == j.workload.name) {
                out.push(j.workload);
            }
        }
        out
    }

    fn save(&self) -> CursorState {
        CursorState {
            pos: self.pos as u64,
            ..CursorState::default()
        }
    }

    fn load(&mut self, s: &CursorState) -> Result<(), CheckpointError> {
        if s.pos as usize > self.jobs.len() {
            return Err(CheckpointError::Corrupt("cursor position past stream end"));
        }
        self.pos = s.pos as usize;
        Ok(())
    }
}

/// The lazy traffic-warp table: piecewise-constant intensity segments
/// and their cumulative weights, exactly as
/// [`ArrivalProcess::generate_shaped`] builds them.
struct WarpTable {
    /// `(start_fraction, multiplier)` segments over `[0, 1]`.
    segs: Vec<(f64, f64)>,
    /// `cum[j] = ∫₀^{segs[j].0} m` plus a final total entry.
    cum: Vec<f64>,
    /// Total weight `∫₀¹ m`.
    total: f64,
}

impl WarpTable {
    fn new(traffic: &[TrafficClause]) -> Self {
        let segs = traffic_breakpoints(traffic);
        let mut cum = Vec::with_capacity(segs.len() + 1);
        cum.push(0.0);
        for j in 0..segs.len() {
            let end = if j + 1 < segs.len() {
                segs[j + 1].0
            } else {
                1.0
            };
            cum.push(cum[j] + segs[j].1 * (end - segs[j].0));
        }
        let total = *cum.last().unwrap();
        WarpTable { segs, cum, total }
    }
}

/// A streaming [`ArrivalCursor`] over a seeded generator: regenerates
/// the exact sequence [`ArrivalProcess::generate_shaped`] would have
/// materialised, one job per pull, in O(1) memory (O(burst) for the
/// bursty regime's merge heap).
///
/// Two generator streams share one seed expansion: construction
/// fast-forwards a clone of the seeded RNG through all `n`
/// arrival-time draws (discarding values, recording the horizon), which
/// positions the per-job draw stream exactly where the batch path's
/// post-sort draws begin; a second, freshly seeded RNG then re-draws
/// arrival times lazily. Poisson times are already sorted; bursty times
/// are merged through a min-heap bounded by the burst-base frontier
/// (no future burst can land before the most recent base, and ties are
/// value-equal, so emission order matches the batch sort bitwise).
pub struct GenCursor {
    process: ArrivalProcess,
    n: usize,
    pool: Vec<Workload>,
    taxa: Vec<Taxon>,
    slo_tightness: (f64, f64),
    seed: u64,
    /// Lazy arrival-time regeneration stream.
    rng_t: SmallRng,
    /// Per-job draw stream, positioned after all time draws.
    rng_j: SmallRng,
    /// Jobs emitted so far (also the next job's id).
    pos: usize,
    /// Arrival times drawn from `rng_t` so far.
    drawn: usize,
    /// Running burst base (bursty) / running time (poisson).
    frontier: f64,
    /// Generated-but-not-emitted times (bursty), as non-negative IEEE
    /// bits (bit order == numeric order for non-negative floats).
    heap: BinaryHeap<Reverse<u64>>,
    /// Last arrival of the full stream (known at construction).
    horizon: f64,
    /// Lazy warp, when traffic clauses are active.
    warp: Option<WarpTable>,
    /// Forward segment pointer of the warp (arrivals are emitted in
    /// sorted order, so it only moves right — same as the batch path).
    warp_seg: usize,
}

impl GenCursor {
    /// Builds a cursor equivalent to
    /// [`ArrivalProcess::generate_shaped`]`(n, pool, size, slo_tightness,
    /// seed, traffic)`. Pass no traffic clauses for the plain
    /// [`generate`](ArrivalProcess::generate) sequence.
    ///
    /// # Panics
    ///
    /// On an empty pool or an invalid SLO tightness range, exactly as
    /// the batch path does.
    pub fn new(
        process: ArrivalProcess,
        n: usize,
        pool: &[Workload],
        size: InputSize,
        slo_tightness: (f64, f64),
        seed: u64,
        traffic: &[TrafficClause],
    ) -> Self {
        validate_stream(pool, slo_tightness);
        let taxa: Vec<Taxon> = pool.iter().map(|w| taxon_of(&(w.build)(size))).collect();
        // Fast-forward a clone of the seeded stream through every
        // arrival-time draw — the exact loop `arrival_times` runs —
        // recording only the maximum (the sorted stream's last entry).
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA1217_F1EE7);
        let mut horizon = 0.0f64;
        match process {
            ArrivalProcess::Poisson { rate_jobs_per_s } => {
                assert!(rate_jobs_per_s > 0.0);
                let mut t = 0.0;
                for _ in 0..n {
                    t += exponential(&mut rng, rate_jobs_per_s);
                }
                horizon = t;
            }
            ArrivalProcess::Bursty {
                rate_jobs_per_s,
                burst,
                spread_s,
            } => {
                assert!(rate_jobs_per_s > 0.0 && burst > 0);
                let burst_rate = rate_jobs_per_s / burst as f64;
                let mut t = 0.0;
                let mut len = 0usize;
                while len < n {
                    t += exponential(&mut rng, burst_rate);
                    for _ in 0..burst.min(n - len) {
                        let v = t + rng.gen_range(0.0..spread_s.max(1e-9));
                        if v > horizon {
                            horizon = v;
                        }
                        len += 1;
                    }
                }
            }
        }
        let warp = if !traffic.is_empty() && n > 0 && horizon > 0.0 {
            Some(WarpTable::new(traffic))
        } else {
            None
        };
        GenCursor {
            process,
            n,
            pool: pool.to_vec(),
            taxa,
            slo_tightness,
            seed,
            rng_t: SmallRng::seed_from_u64(seed ^ 0xA1217_F1EE7),
            rng_j: rng,
            pos: 0,
            drawn: 0,
            frontier: 0.0,
            heap: BinaryHeap::new(),
            horizon,
            warp,
            warp_seg: 0,
        }
    }

    /// The next arrival time in sorted order (caller guarantees
    /// `pos < n`).
    fn next_time(&mut self) -> f64 {
        match self.process {
            ArrivalProcess::Poisson { rate_jobs_per_s } => {
                self.frontier += exponential(&mut self.rng_t, rate_jobs_per_s);
                self.drawn += 1;
                self.frontier
            }
            ArrivalProcess::Bursty {
                rate_jobs_per_s,
                burst,
                spread_s,
            } => {
                let burst_rate = rate_jobs_per_s / burst as f64;
                loop {
                    if let Some(&Reverse(min_bits)) = self.heap.peek() {
                        // Every not-yet-generated job lands at or after
                        // the current burst base, so a pending time at
                        // or before the frontier is globally minimal
                        // (ties are value-equal and therefore
                        // order-insensitive).
                        if self.drawn >= self.n || f64::from_bits(min_bits) <= self.frontier {
                            self.heap.pop();
                            return f64::from_bits(min_bits);
                        }
                    }
                    debug_assert!(self.drawn < self.n, "heap empty with stream unfinished");
                    self.frontier += exponential(&mut self.rng_t, burst_rate);
                    for _ in 0..burst.min(self.n - self.drawn) {
                        let v = self.frontier + self.rng_t.gen_range(0.0..spread_s.max(1e-9));
                        self.heap.push(Reverse(v.to_bits()));
                        self.drawn += 1;
                    }
                }
            }
        }
    }

    /// Applies the lazy traffic warp: the same W⁻¹ map
    /// [`ArrivalProcess::generate_shaped`] applies post-hoc, with the
    /// same monotone forward pointer.
    fn warp_time(&mut self, raw: f64) -> f64 {
        let Some(w) = &self.warp else { return raw };
        let target = (raw / self.horizon).clamp(0.0, 1.0) * w.total;
        if target >= w.total {
            return self.horizon;
        }
        while self.warp_seg + 1 < w.segs.len() && w.cum[self.warp_seg + 1] <= target {
            self.warp_seg += 1;
        }
        let q = w.segs[self.warp_seg].0 + (target - w.cum[self.warp_seg]) / w.segs[self.warp_seg].1;
        (q * self.horizon).min(self.horizon)
    }
}

impl ArrivalCursor for GenCursor {
    fn next_job(&mut self) -> Option<JobSpec> {
        if self.pos >= self.n {
            return None;
        }
        let raw = self.next_time();
        let arrival_s = self.warp_time(raw);
        let k = self.rng_j.gen_range(0..self.pool.len());
        let (lo, hi) = self.slo_tightness;
        let slo = if hi > lo {
            self.rng_j.gen_range(lo..hi)
        } else {
            lo
        };
        let i = self.pos;
        self.pos += 1;
        Some(JobSpec {
            id: i as u32,
            workload: self.pool[k],
            taxon: self.taxa[k],
            arrival_s,
            slo_tightness: slo,
            seed: self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64),
        })
    }

    fn total(&self) -> usize {
        self.n
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn workloads(&self) -> Vec<Workload> {
        self.pool.clone()
    }

    fn save(&self) -> CursorState {
        let mut heap_bits: Vec<u64> = self.heap.iter().map(|r| r.0).collect();
        heap_bits.sort_unstable();
        CursorState {
            pos: self.pos as u64,
            rng_t: self.rng_t.state(),
            rng_j: self.rng_j.state(),
            heap_bits,
            frontier_bits: self.frontier.to_bits(),
            drawn: self.drawn as u64,
            warp_seg: self.warp_seg as u64,
        }
    }

    fn load(&mut self, s: &CursorState) -> Result<(), CheckpointError> {
        if s.pos > self.n as u64 || s.drawn > self.n as u64 || s.pos > s.drawn {
            return Err(CheckpointError::Corrupt("cursor position past stream end"));
        }
        if s.heap_bits.len() as u64 != s.drawn - s.pos {
            return Err(CheckpointError::Corrupt(
                "cursor merge heap inconsistent with position",
            ));
        }
        if let Some(w) = &self.warp {
            if s.warp_seg as usize >= w.segs.len() {
                return Err(CheckpointError::Corrupt(
                    "warp segment pointer out of range",
                ));
            }
        } else if s.warp_seg != 0 {
            return Err(CheckpointError::Corrupt(
                "warp segment pointer without warp",
            ));
        }
        self.pos = s.pos as usize;
        self.drawn = s.drawn as usize;
        self.rng_t = SmallRng::from_state(s.rng_t);
        self.rng_j = SmallRng::from_state(s.rng_j);
        self.frontier = f64::from_bits(s.frontier_bits);
        self.heap = s.heap_bits.iter().map(|&b| Reverse(b)).collect();
        self.warp_seg = s.warp_seg as usize;
        Ok(())
    }
}

/// Writes a stream as a line-delimited external trace [`TraceCursor`]
/// can replay. One job per line, space-separated:
/// `workload arrival_bits_hex slo_bits_hex seed class_index signature`
/// — floats as raw IEEE bit patterns, so the round-trip is lossless to
/// the last bit. Job ids are implicit stream positions, exactly as
/// generated streams number them.
pub fn write_trace<W: Write>(mut w: W, jobs: &[JobSpec]) -> io::Result<()> {
    for j in jobs {
        let class_idx = JobClass::ALL
            .iter()
            .position(|c| *c == j.taxon.class)
            .expect("JobClass::ALL covers every class");
        writeln!(
            w,
            "{} {:016x} {:016x} {} {} {}",
            j.workload.name,
            j.arrival_s.to_bits(),
            j.slo_tightness.to_bits(),
            j.seed,
            class_idx,
            j.taxon.signature
        )?;
    }
    Ok(())
}

/// A streaming [`ArrivalCursor`] over a [`write_trace`]-format file:
/// one buffered line per pull, O(1) memory however long the trace is.
///
/// Malformed lines and unknown workload names panic with the offending
/// line number — a trace file is an input artefact, and replaying a
/// corrupt one deterministically wrong would be worse than stopping.
pub struct TraceCursor {
    path: PathBuf,
    reader: io::BufReader<std::fs::File>,
    pos: usize,
    total: usize,
    pool: Vec<Workload>,
}

impl TraceCursor {
    /// Opens a trace file, scanning it once to count jobs and collect
    /// the distinct workloads (the kernel needs both up front).
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut total = 0usize;
        let mut pool: Vec<Workload> = Vec::new();
        for (ln, line) in io::BufReader::new(std::fs::File::open(path)?)
            .lines()
            .enumerate()
        {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            total += 1;
            let name = line
                .split_whitespace()
                .next()
                .unwrap_or_else(|| panic!("trace line {} is empty", ln + 1));
            if !pool.iter().any(|w| w.name == name) {
                pool.push(astro_workloads::by_name(name).unwrap_or_else(|| {
                    panic!("trace line {} names unknown workload {name:?}", ln + 1)
                }));
            }
        }
        Ok(TraceCursor {
            path: path.to_path_buf(),
            reader: io::BufReader::new(std::fs::File::open(path)?),
            pos: 0,
            total,
            pool,
        })
    }

    fn parse_line(&self, line: &str, id: usize) -> JobSpec {
        let mut f = line.split_whitespace();
        let mut field = |what: &str| {
            f.next()
                .unwrap_or_else(|| panic!("trace job {id}: missing {what}"))
                .to_string()
        };
        let name = field("workload");
        let arrival_bits = u64::from_str_radix(&field("arrival bits"), 16)
            .unwrap_or_else(|e| panic!("trace job {id}: bad arrival bits: {e}"));
        let slo_bits = u64::from_str_radix(&field("slo bits"), 16)
            .unwrap_or_else(|e| panic!("trace job {id}: bad slo bits: {e}"));
        let seed: u64 = field("seed")
            .parse()
            .unwrap_or_else(|e| panic!("trace job {id}: bad seed: {e}"));
        let class_idx: usize = field("class index")
            .parse()
            .unwrap_or_else(|e| panic!("trace job {id}: bad class index: {e}"));
        let signature: u8 = field("signature")
            .parse()
            .unwrap_or_else(|e| panic!("trace job {id}: bad signature: {e}"));
        assert!(
            class_idx < JobClass::ALL.len(),
            "trace job {id}: class index {class_idx} out of range"
        );
        let workload = self
            .pool
            .iter()
            .find(|w| w.name == name)
            .copied()
            .unwrap_or_else(|| panic!("trace job {id}: unknown workload {name:?}"));
        JobSpec {
            id: id as u32,
            workload,
            taxon: Taxon {
                class: JobClass::ALL[class_idx],
                signature,
            },
            arrival_s: f64::from_bits(arrival_bits),
            slo_tightness: f64::from_bits(slo_bits),
            seed,
        }
    }

    /// Reads the next non-empty line, or `None` at end of file.
    fn next_line(&mut self) -> Option<String> {
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .unwrap_or_else(|e| panic!("trace read failed: {e}"));
            if n == 0 {
                return None;
            }
            if !line.trim().is_empty() {
                return Some(line);
            }
        }
    }
}

impl ArrivalCursor for TraceCursor {
    fn next_job(&mut self) -> Option<JobSpec> {
        if self.pos >= self.total {
            return None;
        }
        let line = self.next_line()?;
        let job = self.parse_line(&line, self.pos);
        self.pos += 1;
        Some(job)
    }

    fn total(&self) -> usize {
        self.total
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn workloads(&self) -> Vec<Workload> {
        self.pool.clone()
    }

    fn save(&self) -> CursorState {
        CursorState {
            pos: self.pos as u64,
            ..CursorState::default()
        }
    }

    fn load(&mut self, s: &CursorState) -> Result<(), CheckpointError> {
        if s.pos as usize > self.total {
            return Err(CheckpointError::Corrupt("cursor position past stream end"));
        }
        // Reopen and skip: the trace is the source of truth, and a
        // linear re-scan is exact however the file is buffered.
        let file = std::fs::File::open(&self.path)
            .map_err(|_| CheckpointError::Corrupt("trace file vanished before resume"))?;
        self.reader = io::BufReader::new(file);
        self.pos = 0;
        for _ in 0..s.pos {
            if self.next_line().is_none() {
                return Err(CheckpointError::Corrupt("trace file shrank before resume"));
            }
            self.pos += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Vec<Workload> {
        ["swaptions", "bfs"]
            .iter()
            .map(|n| astro_workloads::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn same_seed_same_stream() {
        let p = ArrivalProcess::Poisson {
            rate_jobs_per_s: 100.0,
        };
        let a = p.generate(50, &pool(), InputSize::Test, (3.0, 6.0), 7);
        let b = p.generate(50, &pool(), InputSize::Test, (3.0, 6.0), 7);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_s, y.arrival_s);
            assert_eq!(x.workload.name, y.workload.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.slo_tightness, y.slo_tightness);
        }
        let c = p.generate(50, &pool(), InputSize::Test, (3.0, 6.0), 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.arrival_s != y.arrival_s));
    }

    #[test]
    fn poisson_rate_is_roughly_honoured() {
        let p = ArrivalProcess::Poisson {
            rate_jobs_per_s: 200.0,
        };
        let jobs = p.generate(400, &pool(), InputSize::Test, (4.0, 4.0), 3);
        let span = jobs.last().unwrap().arrival_s;
        let rate = 400.0 / span;
        assert!((100.0..400.0).contains(&rate), "empirical rate {rate}");
        // Arrivals are sorted.
        assert!(jobs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
    }

    #[test]
    fn bursty_clusters_arrivals() {
        let burst = 10;
        let p = ArrivalProcess::Bursty {
            rate_jobs_per_s: 100.0,
            burst,
            spread_s: 0.001,
        };
        let jobs = p.generate(200, &pool(), InputSize::Test, (4.0, 4.0), 11);
        assert_eq!(jobs.len(), 200);
        assert!(jobs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        // Most consecutive gaps are tiny (within a burst); a few are big.
        let gaps: Vec<f64> = jobs
            .windows(2)
            .map(|w| w[1].arrival_s - w[0].arrival_s)
            .collect();
        let small = gaps.iter().filter(|&&g| g < 0.002).count();
        assert!(
            small > gaps.len() / 2,
            "expected clustered arrivals, {small}/{} small gaps",
            gaps.len()
        );
    }

    #[test]
    fn shaped_with_no_traffic_is_bit_identical() {
        let p = ArrivalProcess::Poisson {
            rate_jobs_per_s: 120.0,
        };
        let plain = p.generate(80, &pool(), InputSize::Test, (3.0, 6.0), 5);
        let shaped = p.generate_shaped(80, &pool(), InputSize::Test, (3.0, 6.0), 5, &[]);
        for (a, b) in plain.iter().zip(&shaped) {
            assert_eq!(a.arrival_s.to_bits(), b.arrival_s.to_bits());
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn flash_crowd_concentrates_the_window() {
        let p = ArrivalProcess::Poisson {
            rate_jobs_per_s: 120.0,
        };
        let traffic = [TrafficClause::FlashCrowd {
            from_frac: 0.4,
            to_frac: 0.6,
            factor: 6.0,
        }];
        let jobs = p.generate_shaped(500, &pool(), InputSize::Test, (3.0, 6.0), 5, &traffic);
        let plain = p.generate(500, &pool(), InputSize::Test, (3.0, 6.0), 5);
        let horizon = plain.last().unwrap().arrival_s;
        assert_eq!(jobs.len(), 500);
        // Horizon, order and per-job draws survive the warp.
        assert_eq!(
            jobs.last().unwrap().arrival_s.to_bits(),
            horizon.to_bits(),
            "warp must preserve the horizon"
        );
        assert!(jobs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        for (a, b) in plain.iter().zip(&jobs) {
            assert_eq!(a.workload.name, b.workload.name);
            assert_eq!(a.seed, b.seed);
        }
        // The 20% window should hold far more than 20% of the stream:
        // with factor 6 the expected share is 1.2 / (0.8 + 1.2) = 60%.
        let in_window = jobs
            .iter()
            .filter(|j| {
                let u = j.arrival_s / horizon;
                (0.4..0.6).contains(&u)
            })
            .count();
        assert!(
            in_window > 200,
            "flash window holds {in_window}/500 jobs, expected ~300"
        );
    }

    #[test]
    fn diurnal_preserves_count_horizon_and_order() {
        let p = ArrivalProcess::Bursty {
            rate_jobs_per_s: 150.0,
            burst: 8,
            spread_s: 0.01,
        };
        let traffic = [TrafficClause::Diurnal {
            cycles: 2.0,
            depth: 0.7,
            steps: 16,
        }];
        let jobs = p.generate_shaped(300, &pool(), InputSize::Test, (3.0, 6.0), 9, &traffic);
        let plain = p.generate(300, &pool(), InputSize::Test, (3.0, 6.0), 9);
        assert_eq!(jobs.len(), 300);
        assert!(jobs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(jobs.iter().all(|j| j.arrival_s >= 0.0));
        assert_eq!(
            jobs.last().unwrap().arrival_s.to_bits(),
            plain.last().unwrap().arrival_s.to_bits()
        );
        // The swell actually moved something.
        assert!(plain
            .iter()
            .zip(&jobs)
            .any(|(a, b)| a.arrival_s.to_bits() != b.arrival_s.to_bits()));
    }

    #[test]
    #[should_panic(expected = "invalid arrival stream: SLO tightness range (0, 4)")]
    fn non_positive_slo_tightness_is_rejected() {
        let p = ArrivalProcess::Poisson {
            rate_jobs_per_s: 50.0,
        };
        // tightness 0 would generate jobs with slo_s == 0 — deadlines
        // that can never be met but used to score a perfect SLO ratio.
        p.generate(10, &pool(), InputSize::Test, (0.0, 4.0), 1);
    }

    #[test]
    #[should_panic(expected = "invalid arrival stream: SLO tightness range (3, inf)")]
    fn non_finite_slo_tightness_is_rejected() {
        let p = ArrivalProcess::Poisson {
            rate_jobs_per_s: 50.0,
        };
        p.generate(10, &pool(), InputSize::Test, (3.0, f64::INFINITY), 1);
    }

    #[test]
    fn ids_are_stream_positions() {
        let p = ArrivalProcess::Poisson {
            rate_jobs_per_s: 50.0,
        };
        let jobs = p.generate(20, &pool(), InputSize::Test, (3.0, 5.0), 1);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id as usize, i);
        }
    }

    fn assert_same_stream(batch: &[JobSpec], cursor: &mut dyn ArrivalCursor) {
        assert_eq!(cursor.total(), batch.len());
        for (i, want) in batch.iter().enumerate() {
            let got = cursor
                .next_job()
                .unwrap_or_else(|| panic!("cursor ended at {i}"));
            assert_eq!(got.id, want.id, "id at {i}");
            assert_eq!(got.workload.name, want.workload.name, "workload at {i}");
            assert_eq!(got.taxon, want.taxon, "taxon at {i}");
            assert_eq!(
                got.arrival_s.to_bits(),
                want.arrival_s.to_bits(),
                "arrival at {i}"
            );
            assert_eq!(
                got.slo_tightness.to_bits(),
                want.slo_tightness.to_bits(),
                "slo at {i}"
            );
            assert_eq!(got.seed, want.seed, "seed at {i}");
        }
        assert!(cursor.next_job().is_none(), "cursor overruns the stream");
    }

    #[test]
    fn gen_cursor_matches_batch_poisson_and_bursty() {
        let procs = [
            ArrivalProcess::Poisson {
                rate_jobs_per_s: 120.0,
            },
            ArrivalProcess::Bursty {
                rate_jobs_per_s: 150.0,
                burst: 8,
                spread_s: 0.01,
            },
        ];
        for p in procs {
            let batch = p.generate(200, &pool(), InputSize::Test, (3.0, 6.0), 41);
            let mut cur = GenCursor::new(p, 200, &pool(), InputSize::Test, (3.0, 6.0), 41, &[]);
            assert_same_stream(&batch, &mut cur);
        }
    }

    #[test]
    fn gen_cursor_matches_batch_under_traffic_warps() {
        let p = ArrivalProcess::Bursty {
            rate_jobs_per_s: 150.0,
            burst: 8,
            spread_s: 0.01,
        };
        let traffic = [
            TrafficClause::FlashCrowd {
                from_frac: 0.4,
                to_frac: 0.6,
                factor: 6.0,
            },
            TrafficClause::Diurnal {
                cycles: 2.0,
                depth: 0.7,
                steps: 16,
            },
        ];
        let batch = p.generate_shaped(300, &pool(), InputSize::Test, (3.0, 6.0), 9, &traffic);
        let mut cur = GenCursor::new(p, 300, &pool(), InputSize::Test, (3.0, 6.0), 9, &traffic);
        assert_same_stream(&batch, &mut cur);
    }

    #[test]
    fn gen_cursor_save_load_resumes_exactly() {
        let p = ArrivalProcess::Bursty {
            rate_jobs_per_s: 150.0,
            burst: 8,
            spread_s: 0.01,
        };
        let batch = p.generate(120, &pool(), InputSize::Test, (3.0, 6.0), 13);
        for cut in [0usize, 1, 37, 119, 120] {
            let mut cur = GenCursor::new(p, 120, &pool(), InputSize::Test, (3.0, 6.0), 13, &[]);
            for _ in 0..cut {
                cur.next_job().unwrap();
            }
            let saved = cur.save();
            let mut resumed = GenCursor::new(p, 120, &pool(), InputSize::Test, (3.0, 6.0), 13, &[]);
            resumed.load(&saved).unwrap();
            assert_same_stream(&batch[cut..], &mut SliceCursor::new(&batch[cut..]));
            for (i, want) in batch[cut..].iter().enumerate() {
                let got = resumed.next_job().unwrap();
                assert_eq!(got.arrival_s.to_bits(), want.arrival_s.to_bits(), "at {i}");
                assert_eq!(got.seed, want.seed);
                assert_eq!(got.id, want.id);
            }
            assert!(resumed.next_job().is_none());
        }
    }

    #[test]
    fn gen_cursor_rejects_impossible_positions() {
        let p = ArrivalProcess::Poisson {
            rate_jobs_per_s: 50.0,
        };
        let mut cur = GenCursor::new(p, 10, &pool(), InputSize::Test, (3.0, 5.0), 1, &[]);
        let mut s = cur.save();
        s.pos = 11;
        assert!(cur.load(&s).is_err());
        let mut s = cur.save();
        s.heap_bits.push(7);
        assert!(cur.load(&s).is_err());
    }

    #[test]
    fn trace_round_trips_losslessly() {
        let p = ArrivalProcess::Bursty {
            rate_jobs_per_s: 150.0,
            burst: 8,
            spread_s: 0.01,
        };
        let batch = p.generate(150, &pool(), InputSize::Test, (3.0, 6.0), 17);
        let dir = std::env::temp_dir().join(format!("astro_trace_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.trace");
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &batch).unwrap();
        std::fs::write(&path, &bytes).unwrap();

        let mut cur = TraceCursor::open(&path).unwrap();
        assert_same_stream(&batch, &mut cur);

        // save/load mid-stream.
        let mut cur = TraceCursor::open(&path).unwrap();
        for _ in 0..77 {
            cur.next_job().unwrap();
        }
        let saved = cur.save();
        let mut resumed = TraceCursor::open(&path).unwrap();
        resumed.load(&saved).unwrap();
        for want in &batch[77..] {
            let got = resumed.next_job().unwrap();
            assert_eq!(got.arrival_s.to_bits(), want.arrival_s.to_bits());
            assert_eq!(got.seed, want.seed);
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn slice_cursor_is_the_identity_adapter() {
        let p = ArrivalProcess::Poisson {
            rate_jobs_per_s: 50.0,
        };
        let batch = p.generate(20, &pool(), InputSize::Test, (3.0, 5.0), 1);
        let mut cur = SliceCursor::new(&batch);
        assert_eq!(cur.workloads().len(), 2);
        assert_same_stream(&batch, &mut cur);
    }
}
