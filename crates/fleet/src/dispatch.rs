//! Admission/dispatch: which board gets the next job.
//!
//! Dispatchers see the cluster, each board's estimated backlog (from
//! profiled service times), per-board service/energy estimates for the
//! job at hand, and whether the policy cache is warm for the job's class
//! on each board. They never see the future of the arrival stream.

use crate::cluster::ClusterSpec;
use crate::job::JobSpec;

/// What a dispatcher sees when placing one job.
#[derive(Clone, Debug)]
pub struct DispatchView<'a> {
    /// The cluster.
    pub cluster: &'a ClusterSpec,
    /// The job's arrival time (the decision instant).
    pub now_s: f64,
    /// Per board: when its current backlog is estimated to drain.
    pub est_busy_until_s: &'a [f64],
    /// Per board: jobs already assigned.
    pub assigned: &'a [usize],
    /// Per board: estimated service time of *this* job there.
    pub est_service_s: &'a [f64],
    /// Per board: estimated energy of *this* job there, Joules.
    pub est_energy_j: &'a [f64],
    /// Per board: does the policy cache hold a fresh entry for this
    /// job's taxon on the board's architecture?
    pub warm: &'a [bool],
}

impl DispatchView<'_> {
    /// Queueing delay a job dispatched now would see on board `b`.
    pub fn backlog_s(&self, b: usize) -> f64 {
        (self.est_busy_until_s[b] - self.now_s).max(0.0)
    }

    /// Estimated completion time of this job on board `b`.
    pub fn est_finish_s(&self, b: usize) -> f64 {
        self.now_s + self.backlog_s(b) + self.est_service_s[b]
    }
}

/// Placement policy over whole boards.
pub trait Dispatcher {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Board index for `job`. Must be `< view.cluster.len()`.
    fn pick(&mut self, view: &DispatchView, job: &JobSpec) -> usize;
}

/// Classic least-loaded: the board whose backlog drains first, blind to
/// architecture and job class (queue length is all real front-ends see).
#[derive(Clone, Copy, Debug, Default)]
pub struct LeastLoaded;

impl Dispatcher for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn pick(&mut self, view: &DispatchView, _job: &JobSpec) -> usize {
        argmin(view.cluster.len(), |b| {
            (view.backlog_s(b), view.assigned[b] as f64)
        })
    }
}

/// Energy-aware: among boards whose backlog is within one service time
/// of the emptiest, take the one with the lowest predicted energy for
/// this job. Trades a bounded amount of queueing for Joules.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyAware;

impl Dispatcher for EnergyAware {
    fn name(&self) -> &'static str {
        "energy-aware"
    }

    fn pick(&mut self, view: &DispatchView, _job: &JobSpec) -> usize {
        let n = view.cluster.len();
        let min_backlog = (0..n)
            .map(|b| view.backlog_s(b))
            .fold(f64::INFINITY, f64::min);
        // Never empty: the minimum-backlog board always qualifies.
        let feasible: Vec<usize> = (0..n)
            .filter(|&b| view.backlog_s(b) <= min_backlog + view.est_service_s[b])
            .collect();
        *feasible
            .iter()
            .min_by(|&&a, &&b| {
                (view.est_energy_j[a], view.est_finish_s(a), a)
                    .partial_cmp(&(view.est_energy_j[b], view.est_finish_s(b), b))
                    .expect("estimates are finite")
            })
            .expect("cluster is not empty")
    }
}

/// Phase-aware: estimated-finish-greedy (backlog + this job's profiled
/// service on each board, so workload↔architecture affinity is priced
/// in), with the job's class steering ties — CPU-heavy jobs break
/// towards big-rich boards, synchronisation/IO-dominated jobs towards
/// LITTLE-rich ones — and warm policy-cache lines preferred within a
/// tie. The class preference never buys real queueing: any board whose
/// estimated finish is more than 2% of a service time behind the global
/// best is out.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseAware;

impl PhaseAware {
    fn prefers_big(job: &JobSpec) -> Option<bool> {
        use crate::job::JobClass::*;
        match job.class() {
            CpuHeavy => Some(true),
            MemIo | Synchronised => Some(false),
            Mixed => None,
        }
    }
}

impl Dispatcher for PhaseAware {
    fn name(&self) -> &'static str {
        "phase-aware"
    }

    fn pick(&mut self, view: &DispatchView, job: &JobSpec) -> usize {
        let n = view.cluster.len();
        let overall = argmin(n, |b| (view.est_finish_s(b), b as f64));
        let tie_band = 0.02 * view.est_service_s[overall];
        let ties: Vec<usize> = (0..n)
            .filter(|&b| view.est_finish_s(b) <= view.est_finish_s(overall) + tie_band)
            .collect();
        let prefers_big = Self::prefers_big(job);
        *ties
            .iter()
            .min_by(|&&a, &&b| {
                let mismatch = |c: usize| match prefers_big {
                    Some(big) => (view.cluster.big_rich(c) != big) as u8 as f64,
                    None => 0.0,
                };
                let ka = (
                    mismatch(a),
                    !view.warm[a] as u8 as f64,
                    view.est_finish_s(a),
                    a as f64,
                );
                let kb = (
                    mismatch(b),
                    !view.warm[b] as u8 as f64,
                    view.est_finish_s(b),
                    b as f64,
                );
                ka.partial_cmp(&kb).expect("estimates are finite")
            })
            .expect("tie set contains the global best")
    }
}

fn argmin(n: usize, key: impl Fn(usize) -> (f64, f64)) -> usize {
    (0..n)
        .min_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("keys are finite"))
        .expect("cluster is not empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;

    fn job(class: JobClass) -> JobSpec {
        JobSpec {
            id: 0,
            workload: astro_workloads::by_name("swaptions").unwrap(),
            taxon: crate::job::Taxon {
                class,
                signature: 2,
            },
            arrival_s: 10.0,
            slo_tightness: 4.0,
            seed: 1,
        }
    }

    struct Fixture {
        cluster: ClusterSpec,
        busy: Vec<f64>,
        assigned: Vec<usize>,
        service: Vec<f64>,
        energy: Vec<f64>,
        warm: Vec<bool>,
    }

    impl Fixture {
        // Board 0: XU4 (big-rich), board 1: RK3399 (LITTLE-rich), ...
        fn new(n: usize) -> Self {
            Fixture {
                cluster: ClusterSpec::heterogeneous(n),
                busy: vec![0.0; n],
                assigned: vec![0; n],
                service: vec![1.0; n],
                energy: vec![1.0; n],
                warm: vec![false; n],
            }
        }

        fn view(&self) -> DispatchView<'_> {
            DispatchView {
                cluster: &self.cluster,
                now_s: 10.0,
                est_busy_until_s: &self.busy,
                assigned: &self.assigned,
                est_service_s: &self.service,
                est_energy_j: &self.energy,
                warm: &self.warm,
            }
        }
    }

    #[test]
    fn least_loaded_tracks_backlog_only() {
        let mut f = Fixture::new(4);
        f.busy = vec![20.0, 14.0, 11.0, 30.0];
        assert_eq!(LeastLoaded.pick(&f.view(), &job(JobClass::CpuHeavy)), 2);
        // Past-empty boards tie at zero backlog; assignment count breaks it.
        f.busy = vec![1.0, 2.0, 3.0, 4.0];
        f.assigned = vec![5, 3, 9, 9];
        assert_eq!(LeastLoaded.pick(&f.view(), &job(JobClass::MemIo)), 1);
    }

    #[test]
    fn energy_aware_picks_cheapest_among_uncongested() {
        let mut f = Fixture::new(4);
        f.energy = vec![4.0, 1.5, 3.0, 2.0];
        assert_eq!(EnergyAware.pick(&f.view(), &job(JobClass::Mixed)), 1);
        // Congest the cheap board far beyond a service time: excluded.
        f.busy[1] = 25.0;
        assert_eq!(EnergyAware.pick(&f.view(), &job(JobClass::Mixed)), 3);
    }

    #[test]
    fn phase_aware_matches_class_to_cluster_shape() {
        let mut f = Fixture::new(4);
        assert!(f
            .cluster
            .big_rich(PhaseAware.pick(&f.view(), &job(JobClass::CpuHeavy))));
        assert!(!f
            .cluster
            .big_rich(PhaseAware.pick(&f.view(), &job(JobClass::Synchronised))));
        // Warm boards win ties within the preferred side.
        f.warm = vec![false, false, true, false];
        assert_eq!(PhaseAware.pick(&f.view(), &job(JobClass::CpuHeavy)), 2);
    }

    #[test]
    fn phase_aware_spills_under_congestion() {
        let mut f = Fixture::new(4);
        // Both big-rich boards (0, 2) deeply backlogged.
        f.busy = vec![30.0, 10.0, 30.0, 10.0];
        let pick = PhaseAware.pick(&f.view(), &job(JobClass::CpuHeavy));
        assert!(!f.cluster.big_rich(pick), "should spill to LITTLE-rich");
    }

    #[test]
    fn picks_are_always_in_range() {
        let f = Fixture::new(5);
        for class in JobClass::ALL {
            for d in [
                &mut LeastLoaded as &mut dyn Dispatcher,
                &mut EnergyAware,
                &mut PhaseAware,
            ] {
                assert!(d.pick(&f.view(), &job(class)) < 5);
            }
        }
    }
}
