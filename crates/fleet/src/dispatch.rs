//! Admission/dispatch: which board gets the next job.
//!
//! Dispatchers are invoked by the event kernel *at arrival time* with
//! the live [`ClusterState`] — per-board liveness, queue depth, backlog
//! estimate (oracle accumulator or online observation, per
//! [`DispatchMode`](crate::state::DispatchMode)), in-flight taxa and
//! utilisation — plus this job's per-board profiled estimates
//! ([`JobEstimates`]). They never see the future of the arrival stream,
//! and they must place the job on a board that is currently *placeable*
//! — up and not blacked out by an active chaos clause (see
//! [`ClusterState::placeable`]).
//!
//! Every decision made here is observable after the fact: when a
//! [`FlightRecorder`](crate::telemetry::FlightRecorder) rides along at
//! [`TraceLevel::Full`](crate::telemetry::TraceLevel), the kernel
//! records each placement (job, workload, chosen board, corrected
//! service estimate) as a control-plane span — dispatchers themselves
//! stay telemetry-free, so a policy can never behave differently just
//! because someone is watching.

use crate::job::JobSpec;
use crate::state::ClusterState;

/// Per-board estimates for the job being placed. Values are profiled
/// per *architecture* and fanned out to boards by the kernel; when the
/// scenario enables observed-service feedback
/// ([`Scenario::with_feedback`](crate::kernel::Scenario::with_feedback)),
/// service estimates already carry the learned per-(taxon,
/// architecture) correction, so every dispatcher prices decisions off
/// what the fleet has actually observed.
#[derive(Clone, Debug)]
pub struct JobEstimates {
    /// Estimated service time of *this* job on each board, seconds.
    pub service_s: Vec<f64>,
    /// Estimated energy of *this* job on each board, Joules.
    pub energy_j: Vec<f64>,
    /// Per board: does the policy cache hold a fresh entry for this
    /// job's taxon on the board's architecture?
    pub warm: Vec<bool>,
}

impl JobEstimates {
    /// An all-zero scratch sized for `n_boards` boards. The kernel
    /// allocates one per run and refills it in place per arrival, so
    /// estimating costs no allocation however many jobs stream through.
    pub fn zeroed(n_boards: usize) -> Self {
        JobEstimates {
            service_s: vec![0.0; n_boards],
            energy_j: vec![0.0; n_boards],
            warm: vec![false; n_boards],
        }
    }

    /// Estimated completion time of this job on board `b` given the
    /// state's backlog estimate.
    pub fn est_finish_s(&self, state: &ClusterState, b: usize) -> f64 {
        state.now_s + state.backlog_s(b) + self.service_s[b]
    }
}

/// Placement policy over whole boards.
pub trait Dispatcher {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Board index for `job`. Must be `< state.len()` and name a board
    /// that is placeable (the kernel asserts both).
    fn pick(&mut self, state: &ClusterState, job: &JobSpec, est: &JobEstimates) -> usize;
}

/// Smallest-key board among the placeable ones. Panics when no board is
/// placeable — the kernel drops jobs before consulting a dispatcher in
/// that case.
fn argmin_placeable(state: &ClusterState, key: impl Fn(usize) -> (f64, f64)) -> usize {
    state
        .placeable_boards()
        .min_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("keys are finite"))
        .expect("at least one board is placeable")
}

/// Classic least-loaded: the live board whose backlog drains first,
/// blind to architecture and job class (queue length is all real
/// front-ends see).
#[derive(Clone, Copy, Debug, Default)]
pub struct LeastLoaded;

impl Dispatcher for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn pick(&mut self, state: &ClusterState, _job: &JobSpec, _est: &JobEstimates) -> usize {
        argmin_placeable(state, |b| (state.backlog_s(b), state.dispatched(b) as f64))
    }
}

/// Energy-aware: among live boards whose backlog is within one service
/// time of the emptiest, take the one with the lowest predicted energy
/// for this job. Trades a bounded amount of queueing for Joules.
///
/// Holds a reusable backlog scratch so a pick allocates nothing: the
/// first pass captures every placeable board's backlog (and the fleet
/// minimum), the second takes the argmin over the feasible set reading
/// the captured values back. Construct with [`EnergyAware::default`].
#[derive(Clone, Debug, Default)]
pub struct EnergyAware {
    /// Backlog estimate per board from the current pick's first pass.
    /// Entries for unplaceable boards are stale and never read.
    backlog: Vec<f64>,
}

impl Dispatcher for EnergyAware {
    fn name(&self) -> &'static str {
        "energy-aware"
    }

    fn pick(&mut self, state: &ClusterState, _job: &JobSpec, est: &JobEstimates) -> usize {
        if self.backlog.len() != state.len() {
            self.backlog.resize(state.len(), 0.0);
        }
        let mut min_backlog = f64::INFINITY;
        for b in state.placeable_boards() {
            let bl = state.backlog_s(b);
            self.backlog[b] = bl;
            min_backlog = min_backlog.min(bl);
        }
        // Never empty: the minimum-backlog placeable board qualifies.
        // The key ends in `b`, so keys are unique and this argmin picks
        // the same board the old sort-free min-by did.
        let mut best: Option<(f64, f64, usize)> = None;
        for b in state.placeable_boards() {
            let bl = self.backlog[b];
            if bl <= min_backlog + est.service_s[b] {
                let key = (est.energy_j[b], state.now_s + bl + est.service_s[b], b);
                if best.map(|k| key < k).unwrap_or(true) {
                    best = Some(key);
                }
            }
        }
        best.expect("some board is up").2
    }
}

/// Phase-aware: estimated-finish-greedy (backlog + this job's profiled
/// service on each board, so workload↔architecture affinity is priced
/// in), with the job's class steering ties — CPU-heavy jobs break
/// towards big-rich boards, synchronisation/IO-dominated jobs towards
/// LITTLE-rich ones — and warm policy-cache lines preferred within a
/// tie. The class preference never buys real queueing: any board whose
/// estimated finish is more than 2% of a service time behind the global
/// best is out.
///
/// Holds a reusable finish-estimate scratch so a pick allocates
/// nothing: the first pass computes every placeable board's estimated
/// finish once (finding the global best as it goes), the tie pass
/// reads the captured values back instead of re-walking board queues.
/// Construct with [`PhaseAware::default`].
#[derive(Clone, Debug, Default)]
pub struct PhaseAware {
    /// Estimated finish per board from the current pick's first pass.
    /// Entries for unplaceable boards are stale and never read.
    finish: Vec<f64>,
}

impl PhaseAware {
    fn prefers_big(job: &JobSpec) -> Option<bool> {
        use crate::job::JobClass::*;
        match job.class() {
            CpuHeavy => Some(true),
            MemIo | Synchronised => Some(false),
            Mixed => None,
        }
    }
}

impl Dispatcher for PhaseAware {
    fn name(&self) -> &'static str {
        "phase-aware"
    }

    fn pick(&mut self, state: &ClusterState, job: &JobSpec, est: &JobEstimates) -> usize {
        if self.finish.len() != state.len() {
            self.finish.resize(state.len(), 0.0);
        }
        // Pass 1: estimated finish per placeable board, captured once —
        // the tie pass reads these back instead of re-deriving backlog.
        // Strict `<` keeps the lowest-indexed board on equal finishes,
        // matching the old (finish, b) lexicographic argmin.
        let mut overall = usize::MAX;
        let mut best_finish = f64::INFINITY;
        for b in state.placeable_boards() {
            let f = est.est_finish_s(state, b);
            self.finish[b] = f;
            if f < best_finish {
                best_finish = f;
                overall = b;
            }
        }
        assert!(overall != usize::MAX, "at least one board is placeable");
        let tie_band = 0.02 * est.service_s[overall];
        let prefers_big = Self::prefers_big(job);
        // Pass 2: argmin over the tie band. The key ends in `b`, so
        // keys are unique and this matches the old min-by exactly.
        let mut best: Option<((f64, f64, f64, f64), usize)> = None;
        for b in state.placeable_boards() {
            let f = self.finish[b];
            if f <= best_finish + tie_band {
                let mismatch = match prefers_big {
                    Some(big) => (state.spec.big_rich(b) != big) as u8 as f64,
                    None => 0.0,
                };
                let key = (mismatch, !est.warm[b] as u8 as f64, f, b as f64);
                if best.map(|(k, _)| key < k).unwrap_or(true) {
                    best = Some((key, b));
                }
            }
        }
        best.expect("tie set contains the global best").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::job::JobClass;
    use crate::state::DispatchMode;

    fn job(class: JobClass) -> JobSpec {
        JobSpec {
            id: 0,
            workload: astro_workloads::by_name("swaptions").unwrap(),
            taxon: crate::job::Taxon {
                class,
                signature: 2,
            },
            arrival_s: 10.0,
            slo_tightness: 4.0,
            seed: 1,
        }
    }

    struct Fixture {
        cluster: ClusterSpec,
        busy: Vec<f64>,
        dispatched: Vec<usize>,
        down: Vec<usize>,
        blackout: Vec<usize>,
        est: JobEstimates,
    }

    impl Fixture {
        // Board 0: XU4 (big-rich), board 1: RK3399 (LITTLE-rich), ...
        fn new(n: usize) -> Self {
            Fixture {
                cluster: ClusterSpec::heterogeneous(n),
                busy: vec![0.0; n],
                dispatched: vec![0; n],
                down: Vec::new(),
                blackout: Vec::new(),
                est: JobEstimates {
                    service_s: vec![1.0; n],
                    energy_j: vec![1.0; n],
                    warm: vec![false; n],
                },
            }
        }

        fn state(&self) -> ClusterState<'_> {
            let mut st = ClusterState::new(&self.cluster, DispatchMode::Oracle);
            st.now_s = 10.0;
            for b in 0..self.cluster.len() {
                st.boards[b].oracle_busy_until_s = self.busy[b];
                st.boards[b].dispatched = self.dispatched[b];
            }
            for &b in &self.down {
                st.set_up(b, false);
            }
            for &b in &self.blackout {
                st.add_blackout(b);
            }
            st
        }
    }

    #[test]
    fn least_loaded_tracks_backlog_only() {
        let mut f = Fixture::new(4);
        f.busy = vec![20.0, 14.0, 11.0, 30.0];
        assert_eq!(
            LeastLoaded.pick(&f.state(), &job(JobClass::CpuHeavy), &f.est),
            2
        );
        // Past-empty boards tie at zero backlog; dispatch count breaks it.
        f.busy = vec![1.0, 2.0, 3.0, 4.0];
        f.dispatched = vec![5, 3, 9, 9];
        assert_eq!(
            LeastLoaded.pick(&f.state(), &job(JobClass::MemIo), &f.est),
            1
        );
    }

    #[test]
    fn down_boards_are_never_picked() {
        let mut f = Fixture::new(4);
        f.busy = vec![0.0, 50.0, 50.0, 50.0];
        f.down = vec![0]; // the obviously best board is down
        for d in [
            &mut LeastLoaded as &mut dyn Dispatcher,
            &mut EnergyAware::default(),
            &mut PhaseAware::default(),
        ] {
            let pick = d.pick(&f.state(), &job(JobClass::CpuHeavy), &f.est);
            assert_ne!(pick, 0, "{} picked a down board", d.name());
        }
    }

    #[test]
    fn blacked_out_boards_are_never_picked() {
        let mut f = Fixture::new(4);
        f.busy = vec![0.0, 50.0, 50.0, 50.0];
        f.blackout = vec![0]; // best board is up but unplaceable
        for d in [
            &mut LeastLoaded as &mut dyn Dispatcher,
            &mut EnergyAware::default(),
            &mut PhaseAware::default(),
        ] {
            let pick = d.pick(&f.state(), &job(JobClass::CpuHeavy), &f.est);
            assert_ne!(pick, 0, "{} picked a blacked-out board", d.name());
            assert!(f.state().placeable(pick));
        }
    }

    #[test]
    fn energy_aware_picks_cheapest_among_uncongested() {
        let mut f = Fixture::new(4);
        f.est.energy_j = vec![4.0, 1.5, 3.0, 2.0];
        assert_eq!(
            EnergyAware::default().pick(&f.state(), &job(JobClass::Mixed), &f.est),
            1
        );
        // Congest the cheap board far beyond a service time: excluded.
        f.busy[1] = 25.0;
        assert_eq!(
            EnergyAware::default().pick(&f.state(), &job(JobClass::Mixed), &f.est),
            3
        );
    }

    #[test]
    fn phase_aware_matches_class_to_cluster_shape() {
        let mut f = Fixture::new(4);
        assert!(f.cluster.big_rich(PhaseAware::default().pick(
            &f.state(),
            &job(JobClass::CpuHeavy),
            &f.est
        )));
        assert!(!f.cluster.big_rich(PhaseAware::default().pick(
            &f.state(),
            &job(JobClass::Synchronised),
            &f.est
        )));
        // Warm boards win ties within the preferred side.
        f.est.warm = vec![false, false, true, false];
        assert_eq!(
            PhaseAware::default().pick(&f.state(), &job(JobClass::CpuHeavy), &f.est),
            2
        );
    }

    #[test]
    fn phase_aware_spills_under_congestion() {
        let mut f = Fixture::new(4);
        // Both big-rich boards (0, 2) deeply backlogged.
        f.busy = vec![30.0, 10.0, 30.0, 10.0];
        let pick = PhaseAware::default().pick(&f.state(), &job(JobClass::CpuHeavy), &f.est);
        assert!(!f.cluster.big_rich(pick), "should spill to LITTLE-rich");
    }

    /// The pre-scratch energy-aware pick, verbatim: collect the
    /// feasible set into a Vec, then min-by over it. Kept as the
    /// reference the allocation-free rewrite must match pick-for-pick.
    fn energy_aware_ref(state: &ClusterState, est: &JobEstimates) -> usize {
        let min_backlog = state
            .placeable_boards()
            .map(|b| state.backlog_s(b))
            .fold(f64::INFINITY, f64::min);
        let feasible: Vec<usize> = state
            .placeable_boards()
            .filter(|&b| state.backlog_s(b) <= min_backlog + est.service_s[b])
            .collect();
        *feasible
            .iter()
            .min_by(|&&a, &&b| {
                (est.energy_j[a], est.est_finish_s(state, a), a)
                    .partial_cmp(&(est.energy_j[b], est.est_finish_s(state, b), b))
                    .expect("estimates are finite")
            })
            .expect("some board is up")
    }

    /// The pre-scratch phase-aware pick, verbatim: argmin over an
    /// iterator min-by, then a collected tie Vec.
    fn phase_aware_ref(state: &ClusterState, job: &JobSpec, est: &JobEstimates) -> usize {
        let overall = argmin_placeable(state, |b| (est.est_finish_s(state, b), b as f64));
        let tie_band = 0.02 * est.service_s[overall];
        let best_finish = est.est_finish_s(state, overall);
        let ties: Vec<usize> = state
            .placeable_boards()
            .filter(|&b| est.est_finish_s(state, b) <= best_finish + tie_band)
            .collect();
        let prefers_big = PhaseAware::prefers_big(job);
        *ties
            .iter()
            .min_by(|&&a, &&b| {
                let mismatch = |c: usize| match prefers_big {
                    Some(big) => (state.spec.big_rich(c) != big) as u8 as f64,
                    None => 0.0,
                };
                let ka = (
                    mismatch(a),
                    !est.warm[a] as u8 as f64,
                    est.est_finish_s(state, a),
                    a as f64,
                );
                let kb = (
                    mismatch(b),
                    !est.warm[b] as u8 as f64,
                    est.est_finish_s(state, b),
                    b as f64,
                );
                ka.partial_cmp(&kb).expect("estimates are finite")
            })
            .expect("tie set contains the global best")
    }

    /// The allocation-free rewrites must agree with the old collecting
    /// implementations on every pick — including engineered exact
    /// finish-time ties, where only the board-index tail of the key
    /// separates candidates. Sweeps seeded pseudo-random fixtures with
    /// clustered values so ties and tie-band edges actually occur.
    #[test]
    fn scratch_dispatchers_match_reference_picks() {
        let mut lcg = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            // xorshift64*: deterministic, dependency-free.
            lcg ^= lcg >> 12;
            lcg ^= lcg << 25;
            lcg ^= lcg >> 27;
            lcg.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut checked = 0usize;
        for case in 0..400 {
            let n = 1 + (next() % 12) as usize;
            let mut f = Fixture::new(n);
            for b in 0..n {
                // Quantised so distinct boards often collide exactly.
                f.busy[b] = (next() % 4) as f64 * 5.0;
                f.dispatched[b] = (next() % 3) as usize;
                f.est.service_s[b] = 1.0 + (next() % 3) as f64;
                f.est.energy_j[b] = (next() % 4) as f64;
                f.est.warm[b] = next() % 2 == 0;
                if next() % 5 == 0 {
                    f.down.push(b);
                } else if next() % 5 == 0 {
                    f.blackout.push(b);
                }
            }
            let st = f.state();
            if !st.any_placeable() {
                continue;
            }
            let mut energy = EnergyAware::default();
            let mut phase = PhaseAware::default();
            for class in JobClass::ALL {
                let j = job(class);
                assert_eq!(
                    energy.pick(&st, &j, &f.est),
                    energy_aware_ref(&st, &f.est),
                    "energy-aware diverged (case {case}, class {class:?})"
                );
                assert_eq!(
                    phase.pick(&st, &j, &f.est),
                    phase_aware_ref(&st, &j, &f.est),
                    "phase-aware diverged (case {case}, class {class:?})"
                );
                checked += 1;
            }
        }
        assert!(checked > 1000, "sweep degenerated: only {checked} picks");
    }

    #[test]
    fn picks_are_always_in_range_and_up() {
        let mut f = Fixture::new(5);
        f.down = vec![1, 3];
        for class in JobClass::ALL {
            for d in [
                &mut LeastLoaded as &mut dyn Dispatcher,
                &mut EnergyAware::default(),
                &mut PhaseAware::default(),
            ] {
                let pick = d.pick(&f.state(), &job(class), &f.est);
                assert!(pick < 5);
                assert!(f.state().up(pick));
            }
        }
    }
}
