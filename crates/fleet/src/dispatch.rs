//! Admission/dispatch: which board gets the next job.
//!
//! Dispatchers are invoked by the event kernel *at arrival time* with
//! the live [`ClusterState`] — per-board liveness, queue depth, backlog
//! estimate (oracle accumulator or online observation, per
//! [`DispatchMode`](crate::state::DispatchMode)), in-flight taxa and
//! utilisation — plus this job's per-board profiled estimates
//! ([`JobEstimates`]). They never see the future of the arrival stream,
//! and they must place the job on a board that is currently *placeable*
//! — up and not blacked out by an active chaos clause (see
//! [`ClusterState::placeable`]).
//!
//! Every decision made here is observable after the fact: when a
//! [`FlightRecorder`](crate::telemetry::FlightRecorder) rides along at
//! [`TraceLevel::Full`](crate::telemetry::TraceLevel), the kernel
//! records each placement (job, workload, chosen board, corrected
//! service estimate) as a control-plane span — dispatchers themselves
//! stay telemetry-free, so a policy can never behave differently just
//! because someone is watching.

use crate::index::DispatchIndex;
use crate::job::JobSpec;
use crate::state::ClusterState;

/// Per-board estimates for the job being placed. Values are profiled
/// per *architecture* and fanned out to boards by the kernel; when the
/// scenario enables observed-service feedback
/// ([`Scenario::with_feedback`](crate::kernel::Scenario::with_feedback)),
/// service estimates already carry the learned per-(taxon,
/// architecture) correction, so every dispatcher prices decisions off
/// what the fleet has actually observed.
#[derive(Clone, Debug)]
pub struct JobEstimates {
    /// Estimated service time of *this* job on each board, seconds.
    pub service_s: Vec<f64>,
    /// Estimated energy of *this* job on each board, Joules.
    pub energy_j: Vec<f64>,
    /// Per board: does the policy cache hold a fresh entry for this
    /// job's taxon on the board's architecture?
    pub warm: Vec<bool>,
}

impl JobEstimates {
    /// An all-zero scratch sized for `n_boards` boards. The kernel
    /// allocates one per run and refills it in place per arrival, so
    /// estimating costs no allocation however many jobs stream through.
    pub fn zeroed(n_boards: usize) -> Self {
        JobEstimates {
            service_s: vec![0.0; n_boards],
            energy_j: vec![0.0; n_boards],
            warm: vec![false; n_boards],
        }
    }

    /// Estimated completion time of this job on board `b` given the
    /// state's backlog estimate.
    pub fn est_finish_s(&self, state: &ClusterState, b: usize) -> f64 {
        state.now_s + state.backlog_s(b) + self.service_s[b]
    }
}

/// Placement policy over whole boards.
pub trait Dispatcher {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Board index for `job`. Must be `< state.len()` and name a board
    /// that is placeable (the kernel asserts both).
    fn pick(&mut self, state: &ClusterState, job: &JobSpec, est: &JobEstimates) -> usize;
}

/// Smallest-key board among the placeable ones. Panics when no board is
/// placeable — the kernel drops jobs before consulting a dispatcher in
/// that case.
fn argmin_placeable(state: &ClusterState, key: impl Fn(usize) -> (f64, f64)) -> usize {
    state
        .placeable_boards()
        .min_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("keys are finite"))
        .expect("at least one board is placeable")
}

/// Classic least-loaded: the live board whose backlog drains first,
/// blind to architecture and job class (queue length is all real
/// front-ends see).
#[derive(Clone, Copy, Debug, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// The reference linear scan (the pre-index pick, verbatim).
    fn pick_scan(&self, state: &ClusterState) -> usize {
        argmin_placeable(state, |b| (state.backlog_s(b), state.dispatched(b) as f64))
    }

    /// Indexed pick: the scan's effective key is `(backlog, dispatched,
    /// board)`, so the argmin is among (a) the zero-class champion —
    /// the `(dispatched, board)`-least among boards whose backlog is
    /// exactly zero, (b) the head equal-backlog group of the ordered
    /// class (backlog order is busy-until order; equal backlogs are
    /// contiguous because `x ↦ (x - now).max(0)` is monotone), and
    /// (c) the head equal-backlog group of the stale view (sorted by
    /// exact backlog bits at the current clock), or every stale board
    /// when the set is small. Candidates are then compared with the
    /// exact scan key.
    fn pick_indexed(&self, state: &ClusterState, idx: &DispatchIndex) -> usize {
        let mut best: Option<(f64, f64, usize)> = None;
        let consider = |best: &mut Option<(f64, f64, usize)>, b: usize| {
            let key = (state.backlog_s(b), state.dispatched(b) as f64, b);
            if best.map(|k| key < k).unwrap_or(true) {
                *best = Some(key);
            }
        };
        if let Some(b) = idx.zero_min() {
            consider(&mut best, b);
        }
        let mut it = idx.ordered_iter();
        if let Some(b0) = it.next() {
            let bl0 = state.backlog_s(b0);
            consider(&mut best, b0);
            for b in it {
                if state.backlog_s(b) != bl0 {
                    break;
                }
                consider(&mut best, b);
            }
        }
        match idx.stale_view(state.now_s.to_bits(), |b| state.backlog_s(b).to_bits()) {
            None => {
                for b in idx.stale_iter() {
                    consider(&mut best, b);
                }
            }
            Some(view) => {
                // Sorted by exact backlog bits: the argmin's backlog
                // is the head's, and equal backlogs are contiguous
                // (bit order is numeric order on non-negative values),
                // so the head group covers every dispatched/board
                // tie-break candidate.
                let mut it = view.all().iter();
                if let Some(&(bl0, b0)) = it.next() {
                    consider(&mut best, b0 as usize);
                    for &(bl, b) in it {
                        if bl != bl0 {
                            break;
                        }
                        consider(&mut best, b as usize);
                    }
                }
            }
        }
        best.expect("at least one board is placeable").2
    }
}

impl Dispatcher for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn pick(&mut self, state: &ClusterState, _job: &JobSpec, _est: &JobEstimates) -> usize {
        match state.dispatch_index() {
            Some(idx) => {
                let b = self.pick_indexed(state, idx);
                #[cfg(feature = "pick_crosscheck")]
                assert_eq!(
                    b,
                    self.pick_scan(state),
                    "least-loaded indexed pick diverged from the reference scan"
                );
                b
            }
            None => self.pick_scan(state),
        }
    }
}

/// Energy-aware: among live boards whose backlog is within one service
/// time of the emptiest, take the one with the lowest predicted energy
/// for this job. Trades a bounded amount of queueing for Joules.
///
/// Holds a reusable backlog scratch so a pick allocates nothing: the
/// first pass captures every placeable board's backlog (and the fleet
/// minimum), the second takes the argmin over the feasible set reading
/// the captured values back. Construct with [`EnergyAware::default`].
#[derive(Clone, Debug, Default)]
pub struct EnergyAware {
    /// Backlog estimate per board from the current pick's first pass.
    /// Entries for unplaceable boards are stale and never read.
    backlog: Vec<f64>,
}

impl EnergyAware {
    /// Indexed pick. The scan's key over the feasible set (boards
    /// within `min_backlog + service` of the fleet-minimum backlog) is
    /// `(energy, now + backlog + service, board)`; estimates are
    /// fanned per architecture class, so within a class the energy
    /// term is constant and the finish term is monotone in backlog —
    /// each class's winner is in the head equal-finish group of its
    /// ordered set (or its lowest-indexed zero-class board, which is
    /// always feasible since its backlog is zero). The fleet-minimum
    /// backlog itself is an order-independent `f64::min` fold, so it
    /// is reconstructed exactly from the class heads. Stale boards go
    /// through the per-clock view (per-architecture head equal-finish
    /// groups, with the same head-infeasibility cutoff as the ordered
    /// class) or, for small sets, an exact walk; candidates compare
    /// with the exact scan key.
    fn pick_indexed(&self, state: &ClusterState, est: &JobEstimates, idx: &DispatchIndex) -> usize {
        let stale_view = idx.stale_view(state.now_s.to_bits(), |b| state.backlog_s(b).to_bits());
        let mut min_backlog = if idx.has_zero() { 0.0 } else { f64::INFINITY };
        if let Some(b) = idx.ordered_iter().next() {
            min_backlog = min_backlog.min(state.backlog_s(b));
        }
        match &stale_view {
            None => {
                for b in idx.stale_iter() {
                    min_backlog = min_backlog.min(state.backlog_s(b));
                }
            }
            Some(view) => {
                // The min over the stale class is the view head's
                // exact value (an `f64::min` fold is order-free).
                if let Some(&(bl0, _)) = view.all().first() {
                    min_backlog = min_backlog.min(f64::from_bits(bl0));
                }
            }
        }
        let mut best: Option<(f64, f64, usize)> = None;
        let consider = |best: &mut Option<(f64, f64, usize)>, b: usize| {
            let bl = state.backlog_s(b);
            if bl <= min_backlog + est.service_s[b] {
                let key = (est.energy_j[b], state.now_s + bl + est.service_s[b], b);
                if best.map(|k| key < k).unwrap_or(true) {
                    *best = Some(key);
                }
            }
        };
        for a in 0..idx.n_arch() {
            if let Some(b) = idx.zero_min_arch(a) {
                consider(&mut best, b);
            }
            let mut it = idx.ordered_iter_arch(a);
            if let Some(b0) = it.next() {
                let bl0 = state.backlog_s(b0);
                // Backlog is non-decreasing along the class order:
                // when the head is infeasible, so is every later board.
                if bl0 <= min_backlog + est.service_s[b0] {
                    let f0 = state.now_s + bl0 + est.service_s[b0];
                    consider(&mut best, b0);
                    for b in it {
                        if state.now_s + state.backlog_s(b) + est.service_s[b] != f0 {
                            break;
                        }
                        consider(&mut best, b);
                    }
                }
            }
        }
        match &stale_view {
            None => {
                for b in idx.stale_iter() {
                    consider(&mut best, b);
                }
            }
            Some(view) => {
                for a in 0..idx.n_arch() {
                    let mut it = view.arch(a).iter();
                    if let Some(&(bl0, b0)) = it.next() {
                        let b0 = b0 as usize;
                        let bl0 = f64::from_bits(bl0);
                        // Backlog is non-decreasing along the view
                        // order and energy/service are per-class
                        // constants, so the class winner is in the
                        // head equal-finish group — and when the head
                        // is infeasible, so is every later board.
                        if bl0 <= min_backlog + est.service_s[b0] {
                            let f0 = state.now_s + bl0 + est.service_s[b0];
                            consider(&mut best, b0);
                            for &(bl, b) in it {
                                let b = b as usize;
                                if state.now_s + f64::from_bits(bl) + est.service_s[b] != f0 {
                                    break;
                                }
                                consider(&mut best, b);
                            }
                        }
                    }
                }
            }
        }
        best.expect("some board is up").2
    }

    /// The reference linear scan (the pre-index pick, verbatim).
    fn pick_scan(&mut self, state: &ClusterState, est: &JobEstimates) -> usize {
        if self.backlog.len() != state.len() {
            self.backlog.resize(state.len(), 0.0);
        }
        let mut min_backlog = f64::INFINITY;
        for b in state.placeable_boards() {
            let bl = state.backlog_s(b);
            self.backlog[b] = bl;
            min_backlog = min_backlog.min(bl);
        }
        // Never empty: the minimum-backlog placeable board qualifies.
        // The key ends in `b`, so keys are unique and this argmin picks
        // the same board the old sort-free min-by did.
        let mut best: Option<(f64, f64, usize)> = None;
        for b in state.placeable_boards() {
            let bl = self.backlog[b];
            if bl <= min_backlog + est.service_s[b] {
                let key = (est.energy_j[b], state.now_s + bl + est.service_s[b], b);
                if best.map(|k| key < k).unwrap_or(true) {
                    best = Some(key);
                }
            }
        }
        best.expect("some board is up").2
    }
}

impl Dispatcher for EnergyAware {
    fn name(&self) -> &'static str {
        "energy-aware"
    }

    fn pick(&mut self, state: &ClusterState, _job: &JobSpec, est: &JobEstimates) -> usize {
        match state.dispatch_index() {
            Some(idx) => {
                let b = self.pick_indexed(state, est, idx);
                #[cfg(feature = "pick_crosscheck")]
                assert_eq!(
                    b,
                    self.pick_scan(state, est),
                    "energy-aware indexed pick diverged from the reference scan"
                );
                b
            }
            None => self.pick_scan(state, est),
        }
    }
}

/// Phase-aware: estimated-finish-greedy (backlog + this job's profiled
/// service on each board, so workload↔architecture affinity is priced
/// in), with the job's class steering ties — CPU-heavy jobs break
/// towards big-rich boards, synchronisation/IO-dominated jobs towards
/// LITTLE-rich ones — and warm policy-cache lines preferred within a
/// tie. The class preference never buys real queueing: any board whose
/// estimated finish is more than 2% of a service time behind the global
/// best is out.
///
/// Holds a reusable finish-estimate scratch so a pick allocates
/// nothing: the first pass computes every placeable board's estimated
/// finish once (finding the global best as it goes), the tie pass
/// reads the captured values back instead of re-walking board queues.
/// Construct with [`PhaseAware::default`].
#[derive(Clone, Debug, Default)]
pub struct PhaseAware {
    /// Estimated finish per board from the current pick's first pass.
    /// Entries for unplaceable boards are stale and never read.
    finish: Vec<f64>,
    /// Per-architecture-class `(finish, board)` champions from the
    /// indexed pick's first pass, reused by its tie pass.
    champ: Vec<Option<(f64, usize)>>,
}

impl PhaseAware {
    fn prefers_big(job: &JobSpec) -> Option<bool> {
        use crate::job::JobClass::*;
        match job.class() {
            CpuHeavy => Some(true),
            MemIo | Synchronised => Some(false),
            Mixed => None,
        }
    }

    /// Indexed pick. Pass 1's effective key is `(finish, board)`;
    /// estimates are fanned per architecture class, so within a class
    /// the finish is monotone in backlog and the class champion is in
    /// the head equal-finish group of its ordered set (or its
    /// lowest-indexed zero-class board — zero backlogs tie on finish).
    /// Pass 2's key `(mismatch, cold, finish, board)` is constant per
    /// class in its first two terms, so each class's tie-band winner
    /// is its pass-1 champion when that champion makes the band — no
    /// other class member can. Stale boards join through the per-clock
    /// view: within a class their finish is monotone in backlog too,
    /// so each class's stale winner is in the head equal-finish group
    /// of its view ordering and folds into the class champion, which
    /// makes pass 2's champion argument cover them unchanged. Small
    /// stale sets are walked exactly in both passes instead. All
    /// comparisons use the exact scan expressions.
    fn pick_indexed(
        &mut self,
        state: &ClusterState,
        job: &JobSpec,
        est: &JobEstimates,
        idx: &DispatchIndex,
    ) -> usize {
        let stale_view = idx.stale_view(state.now_s.to_bits(), |b| state.backlog_s(b).to_bits());
        let na = idx.n_arch();
        if self.champ.len() != na {
            self.champ.resize(na, None);
        }
        let mut overall: Option<(f64, usize)> = None;
        for a in 0..na {
            let mut c: Option<(f64, usize)> = None;
            let consider = |c: &mut Option<(f64, usize)>, b: usize| {
                let key = (est.est_finish_s(state, b), b);
                if c.map(|k| key < k).unwrap_or(true) {
                    *c = Some(key);
                }
            };
            if let Some(b) = idx.zero_min_arch(a) {
                consider(&mut c, b);
            }
            let mut it = idx.ordered_iter_arch(a);
            if let Some(b0) = it.next() {
                let f0 = est.est_finish_s(state, b0);
                consider(&mut c, b0);
                for b in it {
                    if est.est_finish_s(state, b) != f0 {
                        break;
                    }
                    consider(&mut c, b);
                }
            }
            if let Some(view) = &stale_view {
                // Fold the class's stale winner into its champion:
                // finish is monotone in backlog within the class, so
                // it lives in the head equal-finish group, and the
                // keys within the group share `f0` — the group min is
                // the lowest board index.
                let mut it = view.arch(a).iter();
                if let Some(&(_, b0)) = it.next() {
                    let b0 = b0 as usize;
                    let f0 = est.est_finish_s(state, b0);
                    let mut k = (f0, b0);
                    for &(_, b) in it {
                        let b = b as usize;
                        if est.est_finish_s(state, b) != f0 {
                            break;
                        }
                        if b < k.1 {
                            k = (f0, b);
                        }
                    }
                    if c.map(|o| k < o).unwrap_or(true) {
                        c = Some(k);
                    }
                }
            }
            self.champ[a] = c;
            if let Some(k) = c {
                if overall.map(|o| k < o).unwrap_or(true) {
                    overall = Some(k);
                }
            }
        }
        if stale_view.is_none() {
            for b in idx.stale_iter() {
                let k = (est.est_finish_s(state, b), b);
                if overall.map(|o| k < o).unwrap_or(true) {
                    overall = Some(k);
                }
            }
        }
        let (best_finish, overall_b) = overall.expect("at least one board is placeable");
        let tie_band = 0.02 * est.service_s[overall_b];
        let thresh = best_finish + tie_band;
        let prefers_big = Self::prefers_big(job);
        let full_key = |b: usize, f: f64| {
            let mismatch = match prefers_big {
                Some(big) => (state.spec.big_rich(b) != big) as u8 as f64,
                None => 0.0,
            };
            (mismatch, !est.warm[b] as u8 as f64, f, b as f64)
        };
        let mut best: Option<((f64, f64, f64, f64), usize)> = None;
        for a in 0..na {
            if let Some((f, b)) = self.champ[a] {
                if f <= thresh {
                    let key = full_key(b, f);
                    if best.map(|(k, _)| key < k).unwrap_or(true) {
                        best = Some((key, b));
                    }
                }
            }
        }
        if stale_view.is_none() {
            // With the view active, stale candidates already folded
            // into the per-class champions above — pass 2's
            // constant-(mismatch, cold) argument covers them.
            for b in idx.stale_iter() {
                let f = est.est_finish_s(state, b);
                if f <= thresh {
                    let key = full_key(b, f);
                    if best.map(|(k, _)| key < k).unwrap_or(true) {
                        best = Some((key, b));
                    }
                }
            }
        }
        best.expect("tie set contains the global best").1
    }

    /// The reference two-pass scan (the pre-index pick, verbatim).
    fn pick_scan(&mut self, state: &ClusterState, job: &JobSpec, est: &JobEstimates) -> usize {
        if self.finish.len() != state.len() {
            self.finish.resize(state.len(), 0.0);
        }
        // Pass 1: estimated finish per placeable board, captured once —
        // the tie pass reads these back instead of re-deriving backlog.
        // Strict `<` keeps the lowest-indexed board on equal finishes,
        // matching the old (finish, b) lexicographic argmin.
        let mut overall = usize::MAX;
        let mut best_finish = f64::INFINITY;
        for b in state.placeable_boards() {
            let f = est.est_finish_s(state, b);
            self.finish[b] = f;
            if f < best_finish {
                best_finish = f;
                overall = b;
            }
        }
        assert!(overall != usize::MAX, "at least one board is placeable");
        let tie_band = 0.02 * est.service_s[overall];
        let prefers_big = Self::prefers_big(job);
        // Pass 2: argmin over the tie band. The key ends in `b`, so
        // keys are unique and this matches the old min-by exactly.
        let mut best: Option<((f64, f64, f64, f64), usize)> = None;
        for b in state.placeable_boards() {
            let f = self.finish[b];
            if f <= best_finish + tie_band {
                let mismatch = match prefers_big {
                    Some(big) => (state.spec.big_rich(b) != big) as u8 as f64,
                    None => 0.0,
                };
                let key = (mismatch, !est.warm[b] as u8 as f64, f, b as f64);
                if best.map(|(k, _)| key < k).unwrap_or(true) {
                    best = Some((key, b));
                }
            }
        }
        best.expect("tie set contains the global best").1
    }
}

impl Dispatcher for PhaseAware {
    fn name(&self) -> &'static str {
        "phase-aware"
    }

    fn pick(&mut self, state: &ClusterState, job: &JobSpec, est: &JobEstimates) -> usize {
        match state.dispatch_index() {
            Some(idx) => {
                let b = self.pick_indexed(state, job, est, idx);
                #[cfg(feature = "pick_crosscheck")]
                assert_eq!(
                    b,
                    self.pick_scan(state, job, est),
                    "phase-aware indexed pick diverged from the reference scan"
                );
                b
            }
            None => self.pick_scan(state, job, est),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::job::JobClass;
    use crate::state::DispatchMode;

    fn job(class: JobClass) -> JobSpec {
        JobSpec {
            id: 0,
            workload: astro_workloads::by_name("swaptions").unwrap(),
            taxon: crate::job::Taxon {
                class,
                signature: 2,
            },
            arrival_s: 10.0,
            slo_tightness: 4.0,
            seed: 1,
        }
    }

    /// A queued job for the index churn/flood sweeps.
    fn qj_for_churn(svc: f64) -> crate::state::QueuedJob {
        crate::state::QueuedJob {
            job: job(JobClass::CpuHeavy),
            slo_s: 100.0,
            schedule: None,
            sched_arch: "",
            est_service_s: svc,
            profiled_s: svc,
            penalty_s: 0.0,
            migrations: 0,
            redispatches: 0,
        }
    }

    /// An in-flight entry started at `now` for the index churn/flood
    /// sweeps (pass a past `now` for an already-lapsed estimate).
    fn ifl_for_churn(now: f64, svc: f64) -> crate::state::InFlight {
        crate::state::InFlight {
            id: 0,
            taxon: crate::job::Taxon {
                class: JobClass::CpuHeavy,
                signature: 2,
            },
            start_s: now,
            est_finish_s: now + svc,
            profiled_s: svc,
            raw_service_s: svc,
            outcome: crate::job::JobOutcome {
                id: 0,
                workload: "swaptions",
                class: JobClass::CpuHeavy,
                board: 0,
                arrival_s: 0.0,
                start_s: now,
                finish_s: now + svc,
                service_s: svc,
                energy_j: 1.0,
                slo_s: 100.0,
                migrations: 0,
            },
        }
    }

    struct Fixture {
        cluster: ClusterSpec,
        busy: Vec<f64>,
        dispatched: Vec<usize>,
        down: Vec<usize>,
        blackout: Vec<usize>,
        est: JobEstimates,
    }

    impl Fixture {
        // Board 0: XU4 (big-rich), board 1: RK3399 (LITTLE-rich), ...
        fn new(n: usize) -> Self {
            Fixture {
                cluster: ClusterSpec::heterogeneous(n),
                busy: vec![0.0; n],
                dispatched: vec![0; n],
                down: Vec::new(),
                blackout: Vec::new(),
                est: JobEstimates {
                    service_s: vec![1.0; n],
                    energy_j: vec![1.0; n],
                    warm: vec![false; n],
                },
            }
        }

        fn state(&self) -> ClusterState<'_> {
            let mut st = ClusterState::new(&self.cluster, DispatchMode::Oracle);
            st.now_s = 10.0;
            for b in 0..self.cluster.len() {
                st.boards[b].oracle_busy_until_s = self.busy[b];
                st.boards[b].dispatched = self.dispatched[b];
            }
            for &b in &self.down {
                st.set_up(b, false);
            }
            for &b in &self.blackout {
                st.add_blackout(b);
            }
            st
        }
    }

    #[test]
    fn least_loaded_tracks_backlog_only() {
        let mut f = Fixture::new(4);
        f.busy = vec![20.0, 14.0, 11.0, 30.0];
        assert_eq!(
            LeastLoaded.pick(&f.state(), &job(JobClass::CpuHeavy), &f.est),
            2
        );
        // Past-empty boards tie at zero backlog; dispatch count breaks it.
        f.busy = vec![1.0, 2.0, 3.0, 4.0];
        f.dispatched = vec![5, 3, 9, 9];
        assert_eq!(
            LeastLoaded.pick(&f.state(), &job(JobClass::MemIo), &f.est),
            1
        );
    }

    #[test]
    fn down_boards_are_never_picked() {
        let mut f = Fixture::new(4);
        f.busy = vec![0.0, 50.0, 50.0, 50.0];
        f.down = vec![0]; // the obviously best board is down
        for d in [
            &mut LeastLoaded as &mut dyn Dispatcher,
            &mut EnergyAware::default(),
            &mut PhaseAware::default(),
        ] {
            let pick = d.pick(&f.state(), &job(JobClass::CpuHeavy), &f.est);
            assert_ne!(pick, 0, "{} picked a down board", d.name());
        }
    }

    #[test]
    fn blacked_out_boards_are_never_picked() {
        let mut f = Fixture::new(4);
        f.busy = vec![0.0, 50.0, 50.0, 50.0];
        f.blackout = vec![0]; // best board is up but unplaceable
        for d in [
            &mut LeastLoaded as &mut dyn Dispatcher,
            &mut EnergyAware::default(),
            &mut PhaseAware::default(),
        ] {
            let pick = d.pick(&f.state(), &job(JobClass::CpuHeavy), &f.est);
            assert_ne!(pick, 0, "{} picked a blacked-out board", d.name());
            assert!(f.state().placeable(pick));
        }
    }

    #[test]
    fn energy_aware_picks_cheapest_among_uncongested() {
        let mut f = Fixture::new(4);
        f.est.energy_j = vec![4.0, 1.5, 3.0, 2.0];
        assert_eq!(
            EnergyAware::default().pick(&f.state(), &job(JobClass::Mixed), &f.est),
            1
        );
        // Congest the cheap board far beyond a service time: excluded.
        f.busy[1] = 25.0;
        assert_eq!(
            EnergyAware::default().pick(&f.state(), &job(JobClass::Mixed), &f.est),
            3
        );
    }

    #[test]
    fn phase_aware_matches_class_to_cluster_shape() {
        let mut f = Fixture::new(4);
        assert!(f.cluster.big_rich(PhaseAware::default().pick(
            &f.state(),
            &job(JobClass::CpuHeavy),
            &f.est
        )));
        assert!(!f.cluster.big_rich(PhaseAware::default().pick(
            &f.state(),
            &job(JobClass::Synchronised),
            &f.est
        )));
        // Warm boards win ties within the preferred side.
        f.est.warm = vec![false, false, true, false];
        assert_eq!(
            PhaseAware::default().pick(&f.state(), &job(JobClass::CpuHeavy), &f.est),
            2
        );
    }

    #[test]
    fn phase_aware_spills_under_congestion() {
        let mut f = Fixture::new(4);
        // Both big-rich boards (0, 2) deeply backlogged.
        f.busy = vec![30.0, 10.0, 30.0, 10.0];
        let pick = PhaseAware::default().pick(&f.state(), &job(JobClass::CpuHeavy), &f.est);
        assert!(!f.cluster.big_rich(pick), "should spill to LITTLE-rich");
    }

    /// The pre-scratch energy-aware pick, verbatim: collect the
    /// feasible set into a Vec, then min-by over it. Kept as the
    /// reference the allocation-free rewrite must match pick-for-pick.
    fn energy_aware_ref(state: &ClusterState, est: &JobEstimates) -> usize {
        let min_backlog = state
            .placeable_boards()
            .map(|b| state.backlog_s(b))
            .fold(f64::INFINITY, f64::min);
        let feasible: Vec<usize> = state
            .placeable_boards()
            .filter(|&b| state.backlog_s(b) <= min_backlog + est.service_s[b])
            .collect();
        *feasible
            .iter()
            .min_by(|&&a, &&b| {
                (est.energy_j[a], est.est_finish_s(state, a), a)
                    .partial_cmp(&(est.energy_j[b], est.est_finish_s(state, b), b))
                    .expect("estimates are finite")
            })
            .expect("some board is up")
    }

    /// The pre-scratch phase-aware pick, verbatim: argmin over an
    /// iterator min-by, then a collected tie Vec.
    fn phase_aware_ref(state: &ClusterState, job: &JobSpec, est: &JobEstimates) -> usize {
        let overall = argmin_placeable(state, |b| (est.est_finish_s(state, b), b as f64));
        let tie_band = 0.02 * est.service_s[overall];
        let best_finish = est.est_finish_s(state, overall);
        let ties: Vec<usize> = state
            .placeable_boards()
            .filter(|&b| est.est_finish_s(state, b) <= best_finish + tie_band)
            .collect();
        let prefers_big = PhaseAware::prefers_big(job);
        *ties
            .iter()
            .min_by(|&&a, &&b| {
                let mismatch = |c: usize| match prefers_big {
                    Some(big) => (state.spec.big_rich(c) != big) as u8 as f64,
                    None => 0.0,
                };
                let ka = (
                    mismatch(a),
                    !est.warm[a] as u8 as f64,
                    est.est_finish_s(state, a),
                    a as f64,
                );
                let kb = (
                    mismatch(b),
                    !est.warm[b] as u8 as f64,
                    est.est_finish_s(state, b),
                    b as f64,
                );
                ka.partial_cmp(&kb).expect("estimates are finite")
            })
            .expect("tie set contains the global best")
    }

    /// The allocation-free rewrites must agree with the old collecting
    /// implementations on every pick — including engineered exact
    /// finish-time ties, where only the board-index tail of the key
    /// separates candidates. Sweeps seeded pseudo-random fixtures with
    /// clustered values so ties and tie-band edges actually occur.
    #[test]
    fn scratch_dispatchers_match_reference_picks() {
        let mut lcg = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            // xorshift64*: deterministic, dependency-free.
            lcg ^= lcg >> 12;
            lcg ^= lcg << 25;
            lcg ^= lcg >> 27;
            lcg.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut checked = 0usize;
        for case in 0..400 {
            let n = 1 + (next() % 12) as usize;
            let mut f = Fixture::new(n);
            for b in 0..n {
                // Quantised so distinct boards often collide exactly.
                f.busy[b] = (next() % 4) as f64 * 5.0;
                f.dispatched[b] = (next() % 3) as usize;
                f.est.service_s[b] = 1.0 + (next() % 3) as f64;
                f.est.energy_j[b] = (next() % 4) as f64;
                f.est.warm[b] = next() % 2 == 0;
                if next() % 5 == 0 {
                    f.down.push(b);
                } else if next() % 5 == 0 {
                    f.blackout.push(b);
                }
            }
            let st = f.state();
            if !st.any_placeable() {
                continue;
            }
            let mut energy = EnergyAware::default();
            let mut phase = PhaseAware::default();
            for class in JobClass::ALL {
                let j = job(class);
                assert_eq!(
                    energy.pick(&st, &j, &f.est),
                    energy_aware_ref(&st, &f.est),
                    "energy-aware diverged (case {case}, class {class:?})"
                );
                assert_eq!(
                    phase.pick(&st, &j, &f.est),
                    phase_aware_ref(&st, &j, &f.est),
                    "phase-aware diverged (case {case}, class {class:?})"
                );
                checked += 1;
            }
        }
        assert!(checked > 1000, "sweep degenerated: only {checked} picks");
    }

    /// Online-mode mutation churn against the maintained index: a long
    /// seeded stream of enqueues, starts, completions, dispatch-count
    /// bumps, liveness/blackout flips and clock advances — after every
    /// step the indexed pick of each dispatcher must equal its
    /// reference scan, bit for bit. Values are quantised to multiples
    /// of 0.5 so exact busy-until ties, tie-band edges and clock
    /// advances that land exactly on filed in-flight estimates all
    /// occur, and boards are deliberately driven through every index
    /// class (Zero, Ordered, Stale — an enqueue with no in-flight job
    /// makes the busy-until clock-dependent).
    #[test]
    fn indexed_picks_match_scan_under_mutation_churn() {
        let qj = qj_for_churn;
        let ifl = ifl_for_churn;
        let mut lcg = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            lcg ^= lcg >> 12;
            lcg ^= lcg << 25;
            lcg ^= lcg >> 27;
            lcg.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut checked = 0usize;
        for mode in [DispatchMode::Online, DispatchMode::Oracle] {
            for case in 0..8 {
                let n = 2 + (next() % 9) as usize;
                let cluster = ClusterSpec::heterogeneous(n);
                let mut st = ClusterState::new(&cluster, mode);
                st.now_s = 10.0;
                st.enable_dispatch_index();
                // Estimates must be architecture-consistent (the kernel
                // fans them per arch class): heterogeneous clusters
                // alternate XU4 / RK3399 by board parity.
                let arch_svc = [1.0 + (next() % 3) as f64 * 0.5, 1.0 + (next() % 3) as f64];
                let arch_energy = [1.0 + (next() % 2) as f64, 1.0 + (next() % 2) as f64];
                let est = JobEstimates {
                    service_s: (0..n).map(|b| arch_svc[b % 2]).collect(),
                    energy_j: (0..n).map(|b| arch_energy[b % 2]).collect(),
                    warm: (0..n).map(|b| b % 2 == case % 2).collect(),
                };
                let mut blk = vec![false; n];
                for _ in 0..250 {
                    let b = (next() % n as u64) as usize;
                    let svc = 0.5 + (next() % 4) as f64 * 0.5;
                    match next() % 8 {
                        0 => {
                            st.boards[b].enqueue(qj(svc));
                            st.refresh_dispatch_index(b);
                        }
                        1 => {
                            st.boards[b].pop_next();
                            st.refresh_dispatch_index(b);
                        }
                        2 if st.boards[b].in_flight.is_none() => {
                            st.boards[b].in_flight = Some(ifl(st.now_s, svc));
                            st.boards[b].dispatched += 1;
                            st.refresh_dispatch_index(b);
                        }
                        3 => {
                            // Completion: next queued job starts, as the
                            // shard advance loop does.
                            st.boards[b].in_flight = None;
                            if let Some(q) = st.boards[b].pop_next() {
                                let s = q.est_total_s();
                                st.boards[b].in_flight = Some(ifl(st.now_s, s));
                            }
                            st.refresh_dispatch_index(b);
                        }
                        4 => {
                            st.boards[b].dispatched += 1;
                            st.refresh_dispatch_index(b);
                        }
                        5 => {
                            let up = st.up(b);
                            st.set_up(b, !up);
                        }
                        6 => {
                            if blk[b] {
                                st.remove_blackout(b);
                            } else {
                                st.add_blackout(b);
                            }
                            blk[b] = !blk[b];
                        }
                        _ => {
                            if mode == DispatchMode::Oracle {
                                st.boards[b].oracle_busy_until_s =
                                    st.boards[b].oracle_busy_until_s.max(st.now_s) + svc;
                                st.refresh_dispatch_index(b);
                            }
                            // Advances by multiples of 0.5 land exactly
                            // on filed busy-until / in-flight values.
                            let dt = (next() % 4) as f64 * 0.5;
                            st.advance_now(st.now_s + dt);
                        }
                    }
                    assert_eq!(
                        st.dispatch_index().unwrap().filed(),
                        st.placeable_boards().count(),
                        "index filing out of sync with placeability ({mode:?}, case {case})"
                    );
                    if !st.any_placeable() {
                        continue;
                    }
                    let j = job(JobClass::ALL[(next() % JobClass::ALL.len() as u64) as usize]);
                    assert_eq!(
                        LeastLoaded.pick(&st, &j, &est),
                        LeastLoaded.pick_scan(&st),
                        "least-loaded diverged ({mode:?}, case {case})"
                    );
                    let mut energy = EnergyAware::default();
                    assert_eq!(
                        energy.pick(&st, &j, &est),
                        energy.pick_scan(&st, &est),
                        "energy-aware diverged ({mode:?}, case {case})"
                    );
                    let mut phase = PhaseAware::default();
                    assert_eq!(
                        phase.pick(&st, &j, &est),
                        phase.pick_scan(&st, &j, &est),
                        "phase-aware diverged ({mode:?}, case {case})"
                    );
                    checked += 3;
                }
            }
        }
        assert!(
            checked > 3000,
            "churn sweep degenerated: only {checked} picks"
        );
    }

    /// Floods the Stale class far past `STALE_SCAN_MAX` — the regime a
    /// systematic-underestimation chaos clause creates (every in-flight
    /// estimate lapsed with work still queued) — then churns queues,
    /// dispatch counts, liveness and the clock while checking every
    /// indexed pick against its reference scan, bit for bit. Back-to-
    /// back picks at an unchanged clock reuse the cached stale view;
    /// enqueues between picks invalidate it through the revision bump
    /// (backlog moves while the lapse key does not); clock advances
    /// rebuild it outright.
    #[test]
    fn indexed_picks_match_scan_with_flooded_stale_class() {
        let mut lcg = 0x6c62_272e_07bb_0142u64;
        let mut next = move || {
            lcg ^= lcg >> 12;
            lcg ^= lcg << 25;
            lcg ^= lcg >> 27;
            lcg.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let n = 48;
        let cluster = ClusterSpec::heterogeneous(n);
        let mut st = ClusterState::new(&cluster, DispatchMode::Online);
        st.now_s = 10.0;
        st.enable_dispatch_index();
        let lapsed = |now: f64, next: &mut dyn FnMut() -> u64| {
            // An in-flight whose estimate already lapsed: the board
            // files Stale keyed by the overrun estimate.
            let svc = 0.5 + (next() % 4) as f64 * 0.5;
            let mut f = ifl_for_churn(now - 2.0 * svc, svc);
            debug_assert!(f.est_finish_s < now);
            f.id = 1;
            f
        };
        // Seed: every board gets queued work; two thirds also carry a
        // lapsed in-flight (distinct lapse keys), the rest sit idle
        // with a queue (lapse key 0).
        for b in 0..n {
            for _ in 0..1 + next() % 3 {
                st.boards[b].enqueue(qj_for_churn(0.5 + (next() % 4) as f64 * 0.5));
            }
            if b % 3 != 0 {
                st.boards[b].in_flight = Some(lapsed(st.now_s, &mut next));
            }
            st.boards[b].dispatched = (next() % 4) as usize;
            st.refresh_dispatch_index(b);
        }
        let arch_svc = [1.5, 1.5];
        let est = JobEstimates {
            service_s: (0..n).map(|b| arch_svc[b % 2]).collect(),
            energy_j: (0..n).map(|b| 1.0 + (b % 2) as f64).collect(),
            warm: (0..n).map(|b| b % 2 == 0).collect(),
        };
        let mut max_stale = 0usize;
        let mut checked = 0usize;
        for step in 0..400 {
            let b = (next() % n as u64) as usize;
            match next() % 6 {
                0 => {
                    st.boards[b].enqueue(qj_for_churn(0.5 + (next() % 4) as f64 * 0.5));
                    st.refresh_dispatch_index(b);
                }
                1 => {
                    st.boards[b].pop_next();
                    st.refresh_dispatch_index(b);
                }
                2 => {
                    st.boards[b].in_flight = Some(lapsed(st.now_s, &mut next));
                    st.boards[b].dispatched += 1;
                    st.refresh_dispatch_index(b);
                }
                3 => {
                    let up = st.up(b);
                    st.set_up(b, !up);
                }
                4 => {
                    // Quantised advances land exactly on filed values.
                    let dt = (next() % 3) as f64 * 0.5;
                    st.advance_now(st.now_s + dt);
                }
                _ => {
                    st.boards[b].dispatched += 1;
                    st.refresh_dispatch_index(b);
                }
            }
            max_stale = max_stale.max(st.dispatch_index().unwrap().stale_len());
            if !st.any_placeable() {
                continue;
            }
            let j = job(JobClass::ALL[(next() % JobClass::ALL.len() as u64) as usize]);
            // Two rounds per step: the second reuses the cached view.
            for _ in 0..2 {
                assert_eq!(
                    LeastLoaded.pick(&st, &j, &est),
                    LeastLoaded.pick_scan(&st),
                    "least-loaded diverged (step {step})"
                );
                let mut energy = EnergyAware::default();
                assert_eq!(
                    energy.pick(&st, &j, &est),
                    energy.pick_scan(&st, &est),
                    "energy-aware diverged (step {step})"
                );
                let mut phase = PhaseAware::default();
                assert_eq!(
                    phase.pick(&st, &j, &est),
                    phase.pick_scan(&st, &j, &est),
                    "phase-aware diverged (step {step})"
                );
                checked += 3;
            }
        }
        assert!(
            max_stale > 2 * crate::index::STALE_SCAN_MAX,
            "stale flood degenerated: peak {max_stale} boards"
        );
        assert!(checked > 2000, "flood sweep degenerated: {checked} picks");
    }

    #[test]
    fn picks_are_always_in_range_and_up() {
        let mut f = Fixture::new(5);
        f.down = vec![1, 3];
        for class in JobClass::ALL {
            for d in [
                &mut LeastLoaded as &mut dyn Dispatcher,
                &mut EnergyAware::default(),
                &mut PhaseAware::default(),
            ] {
                let pick = d.pick(&f.state(), &job(class), &f.est);
                assert!(pick < 5);
                assert!(f.state().up(pick));
            }
        }
    }
}
