//! Dependency-free binary encoding for kernel checkpoints.
//!
//! The resident kernel (see [`crate::kernel::ResidentKernel`]) can
//! serialise its complete mid-run state to bytes and later resume such
//! that the resumed run is **bit-identical** to the uninterrupted one.
//! This module provides the wire primitives: a little-endian
//! length-checked encoder/decoder pair, the versioned header, and the
//! error type every malformed input is rejected with. There is no
//! `unsafe` anywhere on the decode path and every read is
//! bounds-checked, so corrupted, truncated or wrong-version bytes
//! produce a [`CheckpointError`] — never a panic, UB or a silent
//! misparse.
//!
//! Floats are stored as raw IEEE-754 bit patterns ([`f64::to_bits`]),
//! which is what makes restore exact: no text round-trip, no rounding.

use crate::job::{JobClass, JobOutcome, JobSpec, Taxon};
use crate::state::{DropReason, DroppedJob, QueuedJob};
use astro_core::schedule::StaticSchedule;
use astro_rl::qlearn::PolicySnapshot;
use std::fmt;

/// Magic bytes opening every checkpoint ("Astro Fleet ChecKpoint").
pub const MAGIC: [u8; 4] = *b"AFCK";
/// Current checkpoint format version. Bumped on any layout change.
pub const VERSION: u32 = 1;

/// Why a checkpoint could not be decoded. Every variant is a clean,
/// descriptive rejection — malformed bytes can never partially apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before a read completed.
    Truncated {
        /// Byte offset the failed read started at.
        at: usize,
        /// Bytes the read needed.
        need: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The leading magic bytes are not [`MAGIC`].
    BadMagic,
    /// The format version is not [`VERSION`].
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The checkpoint was taken under a different kernel configuration
    /// (cluster, scenario, parameters) than the one resuming it.
    ConfigMismatch {
        /// Configuration fingerprint found in the header.
        found: u64,
        /// Fingerprint of the resuming configuration.
        expected: u64,
    },
    /// A decoded value is structurally impossible (bad enum tag,
    /// count exceeding remaining bytes, inconsistent cross-field state).
    Corrupt(&'static str),
    /// A workload name in the checkpoint is not in this build's
    /// workload registry.
    UnknownWorkload(String),
    /// An architecture key in the checkpoint is not present in the
    /// resuming cluster.
    UnknownArch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { at, need, have } => write!(
                f,
                "truncated checkpoint: read of {need} bytes at offset {at} has only {have} left"
            ),
            CheckpointError::BadMagic => write!(f, "not a fleet checkpoint (bad magic)"),
            CheckpointError::BadVersion { found, expected } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads version {expected})"
            ),
            CheckpointError::ConfigMismatch { found, expected } => write!(
                f,
                "checkpoint was taken under a different configuration \
                 (fingerprint {found:#018x}, resuming under {expected:#018x})"
            ),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::UnknownWorkload(name) => {
                write!(f, "checkpoint names unknown workload {name:?}")
            }
            CheckpointError::UnknownArch(name) => {
                write!(
                    f,
                    "checkpoint names architecture {name:?} absent from this cluster"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Little-endian binary encoder. Append-only; the companion [`Dec`]
/// reads fields back in the same order.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
pub(crate) struct Dec<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Dec<'a> {
    pub fn new(b: &'a [u8]) -> Self {
        Dec { b, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let have = self.b.len() - self.off;
        if have < n {
            return Err(CheckpointError::Truncated {
                at: self.off,
                need: n,
                have,
            });
        }
        let s = &self.b[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Corrupt("boolean byte out of range")),
        }
    }

    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CheckpointError::Corrupt("usize field overflows platform"))
    }

    /// A count that must be satisfiable by the bytes remaining (each
    /// element at least `min_elem_bytes`), so corrupt counts are
    /// rejected before any allocation of that size.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.usize()?;
        let remaining = self.b.len() - self.off;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(CheckpointError::Corrupt(
                "element count exceeds remaining checkpoint bytes",
            ));
        }
        Ok(n)
    }

    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Corrupt("string field is not UTF-8"))
    }

    /// Fails unless every byte has been consumed — trailing garbage is
    /// treated as corruption, not ignored.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.off == self.b.len() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt("trailing bytes after checkpoint"))
        }
    }
}

/// FNV-1a over a byte slice — the checkpoint's integrity checksum and
/// the mixer behind the configuration fingerprint.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends the integrity checksum over everything encoded so far. The
/// sealed buffer is what [`unseal`] accepts.
pub(crate) fn seal(mut buf: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Verifies the trailing checksum and returns the payload it covers.
/// Any byte flip anywhere in a sealed checkpoint fails here, before
/// structural decoding even starts.
pub(crate) fn unseal(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < 8 {
        return Err(CheckpointError::Truncated {
            at: 0,
            need: 8,
            have: bytes.len(),
        });
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(payload) != stored {
        return Err(CheckpointError::Corrupt("integrity checksum mismatch"));
    }
    Ok(payload)
}

/// Writes the versioned header: magic, format version, and the
/// configuration fingerprint of the run taking the checkpoint.
pub(crate) fn header(enc: &mut Enc, config_fp: u64) {
    enc.buf.extend_from_slice(&MAGIC);
    enc.u32(VERSION);
    enc.u64(config_fp);
}

/// Validates the header against this build and the resuming run's
/// configuration fingerprint.
pub(crate) fn check_header(dec: &mut Dec<'_>, config_fp: u64) -> Result<(), CheckpointError> {
    let magic = dec.take(4)?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = dec.u32()?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion {
            found: version,
            expected: VERSION,
        });
    }
    let found = dec.u64()?;
    if found != config_fp {
        return Err(CheckpointError::ConfigMismatch {
            found,
            expected: config_fp,
        });
    }
    Ok(())
}

/// A saved arrival-cursor position: everything any
/// [`ArrivalCursor`](crate::arrival::ArrivalCursor) implementation
/// needs to resume its exact pull sequence. Fields a given cursor does
/// not use stay at their zero values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CursorState {
    /// Jobs already pulled from the stream.
    pub pos: u64,
    /// Arrival-time generator state (lazy regeneration stream).
    pub rng_t: [u64; 4],
    /// Per-job draw generator state (workload pick, SLO tightness).
    pub rng_j: [u64; 4],
    /// Pending generated-but-not-emitted arrival times (bursty merge
    /// heap), as raw non-negative IEEE bits.
    pub heap_bits: Vec<u64>,
    /// Burst-base frontier (bursty regime), raw IEEE bits.
    pub frontier_bits: u64,
    /// Arrival times drawn from `rng_t` so far.
    pub drawn: u64,
    /// Forward segment pointer of the lazy traffic warp.
    pub warp_seg: u64,
}

impl CursorState {
    pub(crate) fn encode(&self, enc: &mut Enc) {
        enc.u64(self.pos);
        for w in self.rng_t.iter().chain(self.rng_j.iter()) {
            enc.u64(*w);
        }
        enc.usize(self.heap_bits.len());
        for &b in &self.heap_bits {
            enc.u64(b);
        }
        enc.u64(self.frontier_bits);
        enc.u64(self.drawn);
        enc.u64(self.warp_seg);
    }

    pub(crate) fn decode(dec: &mut Dec<'_>) -> Result<Self, CheckpointError> {
        let pos = dec.u64()?;
        let mut rng_t = [0u64; 4];
        let mut rng_j = [0u64; 4];
        for w in rng_t.iter_mut() {
            *w = dec.u64()?;
        }
        for w in rng_j.iter_mut() {
            *w = dec.u64()?;
        }
        let n = dec.count(8)?;
        let mut heap_bits = Vec::with_capacity(n);
        for _ in 0..n {
            heap_bits.push(dec.u64()?);
        }
        Ok(CursorState {
            pos,
            rng_t,
            rng_j,
            heap_bits,
            frontier_bits: dec.u64()?,
            drawn: dec.u64()?,
            warp_seg: dec.u64()?,
        })
    }
}

/// Resolve an architecture key from a checkpoint against the resuming
/// cluster's interned keys.
pub(crate) fn resolve_arch(
    keys: &[&'static str],
    name: &str,
) -> Result<&'static str, CheckpointError> {
    keys.iter()
        .find(|&&k| k == name)
        .copied()
        .ok_or_else(|| CheckpointError::UnknownArch(name.to_string()))
}

pub(crate) fn enc_taxon(enc: &mut Enc, t: Taxon) {
    let class = JobClass::ALL
        .iter()
        .position(|&c| c == t.class)
        .expect("JobClass::ALL covers every class");
    enc.u8(class as u8);
    enc.u8(t.signature);
}

pub(crate) fn dec_taxon(dec: &mut Dec<'_>) -> Result<Taxon, CheckpointError> {
    let class = *JobClass::ALL
        .get(dec.u8()? as usize)
        .ok_or(CheckpointError::Corrupt("job class tag out of range"))?;
    let signature = dec.u8()?;
    if signature >= 27 {
        return Err(CheckpointError::Corrupt(
            "taxon signature out of base-3 range",
        ));
    }
    Ok(Taxon { class, signature })
}

pub(crate) fn enc_job_spec(enc: &mut Enc, j: &JobSpec) {
    enc.u32(j.id);
    enc.str(j.workload.name);
    enc_taxon(enc, j.taxon);
    enc.f64(j.arrival_s);
    enc.f64(j.slo_tightness);
    enc.u64(j.seed);
}

pub(crate) fn dec_job_spec(dec: &mut Dec<'_>) -> Result<JobSpec, CheckpointError> {
    let id = dec.u32()?;
    let name = dec.str()?;
    let workload = astro_workloads::by_name(&name).ok_or(CheckpointError::UnknownWorkload(name))?;
    Ok(JobSpec {
        id,
        workload,
        taxon: dec_taxon(dec)?,
        arrival_s: dec.f64()?,
        slo_tightness: dec.f64()?,
        seed: dec.u64()?,
    })
}

pub(crate) fn enc_outcome(enc: &mut Enc, o: &JobOutcome) {
    enc.u32(o.id);
    enc.str(o.workload);
    let class = JobClass::ALL
        .iter()
        .position(|&c| c == o.class)
        .expect("JobClass::ALL covers every class");
    enc.u8(class as u8);
    enc.usize(o.board);
    enc.f64(o.arrival_s);
    enc.f64(o.start_s);
    enc.f64(o.finish_s);
    enc.f64(o.service_s);
    enc.f64(o.energy_j);
    enc.f64(o.slo_s);
    enc.u32(o.migrations);
}

pub(crate) fn dec_outcome(
    dec: &mut Dec<'_>,
    n_boards: usize,
) -> Result<JobOutcome, CheckpointError> {
    let id = dec.u32()?;
    let name = dec.str()?;
    let workload = astro_workloads::by_name(&name)
        .ok_or(CheckpointError::UnknownWorkload(name))?
        .name;
    let class = *JobClass::ALL
        .get(dec.u8()? as usize)
        .ok_or(CheckpointError::Corrupt("job class tag out of range"))?;
    let board = dec.usize()?;
    if board >= n_boards {
        return Err(CheckpointError::Corrupt("outcome board out of range"));
    }
    Ok(JobOutcome {
        id,
        workload,
        class,
        board,
        arrival_s: dec.f64()?,
        start_s: dec.f64()?,
        finish_s: dec.f64()?,
        service_s: dec.f64()?,
        energy_j: dec.f64()?,
        slo_s: dec.f64()?,
        migrations: dec.u32()?,
    })
}

pub(crate) fn enc_schedule(enc: &mut Enc, s: &StaticSchedule) {
    for &c in &s.config_for_phase {
        enc.usize(c);
    }
}

pub(crate) fn dec_schedule(dec: &mut Dec<'_>) -> Result<StaticSchedule, CheckpointError> {
    let mut config_for_phase = [0usize; astro_compiler::ProgramPhase::COUNT];
    for c in config_for_phase.iter_mut() {
        *c = dec.usize()?;
    }
    Ok(StaticSchedule { config_for_phase })
}

pub(crate) fn enc_snapshot(enc: &mut Enc, s: &PolicySnapshot) {
    enc.usize(s.state_dim);
    enc.usize(s.num_actions);
    enc.usize(s.params.len());
    for &p in &s.params {
        enc.f64(p);
    }
}

pub(crate) fn dec_snapshot(dec: &mut Dec<'_>) -> Result<PolicySnapshot, CheckpointError> {
    let state_dim = dec.usize()?;
    let num_actions = dec.usize()?;
    let n = dec.count(8)?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(dec.f64()?);
    }
    Ok(PolicySnapshot {
        state_dim,
        num_actions,
        params,
    })
}

pub(crate) fn enc_queued_job(enc: &mut Enc, q: &QueuedJob) {
    enc_job_spec(enc, &q.job);
    enc.f64(q.slo_s);
    match &q.schedule {
        None => enc.bool(false),
        Some((st, v)) => {
            enc.bool(true);
            enc_schedule(enc, st);
            enc.u32(*v);
        }
    }
    enc.str(q.sched_arch);
    enc.f64(q.est_service_s);
    enc.f64(q.profiled_s);
    enc.f64(q.penalty_s);
    enc.u32(q.migrations);
    enc.u32(q.redispatches);
}

pub(crate) fn dec_queued_job(
    dec: &mut Dec<'_>,
    arch_keys: &[&'static str],
) -> Result<QueuedJob, CheckpointError> {
    let job = dec_job_spec(dec)?;
    let slo_s = dec.f64()?;
    let schedule = if dec.bool()? {
        let st = dec_schedule(dec)?;
        Some((st, dec.u32()?))
    } else {
        None
    };
    let arch = dec.str()?;
    Ok(QueuedJob {
        job,
        slo_s,
        schedule,
        sched_arch: resolve_arch(arch_keys, &arch)?,
        est_service_s: dec.f64()?,
        profiled_s: dec.f64()?,
        penalty_s: dec.f64()?,
        migrations: dec.u32()?,
        redispatches: dec.u32()?,
    })
}

pub(crate) fn enc_dropped(enc: &mut Enc, d: &DroppedJob) {
    enc.u32(d.id);
    enc.u8(match d.reason {
        DropReason::NoBoardUp => 0,
        DropReason::MigrationCap => 1,
    });
}

pub(crate) fn dec_dropped(dec: &mut Dec<'_>) -> Result<DroppedJob, CheckpointError> {
    let id = dec.u32()?;
    let reason = match dec.u8()? {
        0 => DropReason::NoBoardUp,
        1 => DropReason::MigrationCap,
        _ => return Err(CheckpointError::Corrupt("drop reason tag out of range")),
    };
    Ok(DroppedJob { id, reason })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.usize(12345);
        e.f64(-0.0);
        e.f64(f64::INFINITY);
        e.str("odroid-xu4");
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.f64().unwrap(), f64::INFINITY);
        assert_eq!(d.str().unwrap(), "odroid-xu4");
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let mut e = Enc::new();
        e.u64(42);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes[..5]);
        match d.u64() {
            Err(CheckpointError::Truncated {
                at: 0,
                need: 8,
                have: 5,
            }) => {}
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        let mut e = Enc::new();
        e.u64(u64::MAX); // an absurd element count
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.count(8), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut e = Enc::new();
        e.u32(1);
        let mut bytes = e.finish();
        bytes.push(0xFF);
        let mut d = Dec::new(&bytes);
        d.u32().unwrap();
        assert!(matches!(d.finish(), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn header_rejections_are_specific() {
        let mut e = Enc::new();
        header(&mut e, 0x1234);
        let good = e.finish();

        let mut d = Dec::new(&good);
        check_header(&mut d, 0x1234).unwrap();

        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            check_header(&mut Dec::new(&wrong_magic), 0x1234),
            Err(CheckpointError::BadMagic)
        );

        let mut wrong_version = good.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            check_header(&mut Dec::new(&wrong_version), 0x1234),
            Err(CheckpointError::BadVersion { found: 99, .. })
        ));

        assert!(matches!(
            check_header(&mut Dec::new(&good), 0x9999),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn cursor_state_round_trips() {
        let s = CursorState {
            pos: 9,
            rng_t: [1, 2, 3, 4],
            rng_j: [5, 6, 7, 8],
            heap_bits: vec![10, 11, 12],
            frontier_bits: 13,
            drawn: 14,
            warp_seg: 15,
        };
        let mut e = Enc::new();
        s.encode(&mut e);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(CursorState::decode(&mut d).unwrap(), s);
        d.finish().unwrap();
    }
}
