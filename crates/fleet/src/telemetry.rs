//! Deterministic flight recorder for the fleet kernel: structured
//! event tracing, streaming quantile digests, and wall-clock phase
//! profiling — zero-cost when off, byte-identical outcomes when on.
//!
//! The source paper's premise is scheduling driven by *observed*
//! runtime behaviour; until now the fleet's own observability was
//! post-hoc (metrics computed from a retained `Vec<JobOutcome>` after
//! the run). This module is the live substrate: the kernel calls a
//! small inventory of hooks on a [`FlightRecorder`] and every layer of
//! telemetry is derived from those calls alone.
//!
//! **Three layers, three clocks:**
//!
//! 1. *Structured event tracing* ([`TraceEvent`]) — spans for dispatch
//!    decisions, shard `advance_all` windows, barrier merges, preempt
//!    scans, churn and chaos window edges, emitted as
//!    Chrome-trace/Perfetto JSON by [`FlightRecorder::render_chrome_trace`].
//!    Timestamps are **sim time** (microseconds of virtual clock), so
//!    traces are byte-identical across machines and shard counts.
//! 2. *Streaming aggregation* ([`QuantileDigest`], [`WindowSample`]) —
//!    a fixed-size log-bucketed latency histogram plus a counter
//!    registry and per-tick gauge samples (utilisation, queue depth,
//!    backlog, feedback error, blackout/throttle state). Gives
//!    p50/p95/p99-so-far and SLO-miss over sim time *without retaining
//!    outcomes* — the digest the resident-service refactor needs.
//! 3. *Wall-clock phase profiling* ([`PhaseProfile`]) — control-plane
//!    vs shard-advance vs barrier-merge timers. These are **machine
//!    time**, machine-dependent by construction, and excluded from
//!    every golden; they exist to aim the hot-path work, not to be
//!    reproducible.
//!
//! **The determinism argument.** Every hook runs on the sequential
//! control plane (never inside a shard advance, which may fan out
//! across worker threads); hooks *read* kernel state and *write* only
//! recorder state; and completion-derived telemetry is taken at the
//! barrier merge after sorting the fold's completions by
//! `(finish_s, id)` — within one merge the order is pinned, and
//! successive advance windows are disjoint and increasing, so the
//! completion event stream is globally monotone in sim time for every
//! shard count. The kernel's simulation state never branches on the
//! recorder, so outcomes are bitwise identical with tracing on or off
//! (pinned by the `proptest_telemetry` suite). The off path costs one
//! branch per hook: every hook is `#[inline]` and returns immediately
//! unless its [`TraceLevel`] is enabled.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// How much the flight recorder captures. Levels are cumulative and
/// ordered: each level records everything the previous one does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing; every hook is a single predicted-false branch.
    Off,
    /// Streaming aggregation only: quantile digests, counters, and a
    /// [`WindowSample`] per monitor tick. No trace events.
    Ticks,
    /// Plus structured spans: shard advance windows, preempt scans,
    /// churn and chaos window edges, monitor-tick markers.
    Spans,
    /// Plus per-job events: a span per dispatch decision and an
    /// instant event per completion and drop. The high-volume layer.
    Full,
}

impl TraceLevel {
    /// Parse a `--trace-level` value. Accepts `off`, `ticks`, `spans`,
    /// `full`; anything else is `None`.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "ticks" => Some(TraceLevel::Ticks),
            "spans" => Some(TraceLevel::Spans),
            "full" => Some(TraceLevel::Full),
            _ => None,
        }
    }

    /// Stable label (the inverse of [`TraceLevel::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Ticks => "ticks",
            TraceLevel::Spans => "spans",
            TraceLevel::Full => "full",
        }
    }
}

/// Geometric growth factor between adjacent digest buckets: every
/// streamed quantile is within one factor of the exact nearest-rank
/// value (≤ 5% relative error) for samples inside the digest's range.
pub const DIGEST_GROWTH: f64 = 1.05;
/// Lower edge of the digest's first bucket, seconds. Samples at or
/// below it land in bucket 0.
pub const DIGEST_FLOOR: f64 = 1e-9;
/// Fixed bucket count. With [`DIGEST_GROWTH`] this spans
/// `1e-9 s .. ~3.6e4 s` — nanoseconds to ten sim-hours; samples above
/// the span clamp into the last bucket.
pub const DIGEST_BUCKETS: usize = 640;

/// A fixed-size, deterministic streaming quantile estimator: a
/// log-bucketed histogram with [`DIGEST_BUCKETS`] geometric buckets.
///
/// Adding a sample is O(1) and allocation-free; a quantile query walks
/// the bucket array. The estimate contract — tested against the exact
/// nearest-rank [`percentile`](crate::metrics::percentile) — is:
/// `exact <= estimate <= exact * DIGEST_GROWTH` for any sample set
/// within `[DIGEST_FLOOR, DIGEST_FLOOR * DIGEST_GROWTH^DIGEST_BUCKETS]`.
/// The histogram is a pure function of the *multiset* of samples, so
/// the stream order (which may differ in wall time across shard
/// fan-outs) cannot change any answer.
#[derive(Clone)]
pub struct QuantileDigest {
    counts: Vec<u64>,
    total: u64,
}

impl QuantileDigest {
    /// An empty digest.
    pub fn new() -> Self {
        QuantileDigest {
            counts: vec![0; DIGEST_BUCKETS],
            total: 0,
        }
    }

    /// Bucket index of a sample: `floor(log(x / FLOOR) / log(GROWTH))`,
    /// clamped into the array. Non-finite and non-positive samples
    /// clamp to bucket 0 (they cannot occur from the kernel, but a
    /// digest must never panic on data).
    fn bucket(x: f64) -> usize {
        if !(x > DIGEST_FLOOR) {
            return 0;
        }
        let i = (x / DIGEST_FLOOR).ln() / DIGEST_GROWTH.ln();
        (i as usize).min(DIGEST_BUCKETS - 1)
    }

    /// Upper edge of bucket `i`, seconds — what quantile queries report.
    fn upper(i: usize) -> f64 {
        DIGEST_FLOOR * DIGEST_GROWTH.powi(i as i32 + 1)
    }

    /// Fold one sample in.
    pub fn add(&mut self, x: f64) {
        self.counts[Self::bucket(x)] += 1;
        self.total += 1;
    }

    /// Samples folded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Serialise the digest sparsely (only occupied buckets) for a
    /// kernel checkpoint.
    pub(crate) fn encode(&self, enc: &mut crate::checkpoint::Enc) {
        let occupied = self.counts.iter().filter(|&&c| c > 0).count();
        enc.usize(occupied);
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                enc.u32(i as u32);
                enc.u64(c);
            }
        }
        enc.u64(self.total);
    }

    /// Decode a digest serialised by [`QuantileDigest::encode`],
    /// rejecting out-of-range bucket indices and count/total mismatches.
    pub(crate) fn decode(
        dec: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let occupied = dec.count(12)?;
        let mut d = QuantileDigest::new();
        let mut sum = 0u64;
        for _ in 0..occupied {
            let i = dec.u32()? as usize;
            if i >= DIGEST_BUCKETS {
                return Err(CheckpointError::Corrupt("digest bucket index out of range"));
            }
            let c = dec.u64()?;
            d.counts[i] = c;
            sum = sum
                .checked_add(c)
                .ok_or(CheckpointError::Corrupt("digest counts overflow"))?;
        }
        d.total = dec.u64()?;
        if d.total != sum {
            return Err(CheckpointError::Corrupt(
                "digest total disagrees with bucket counts",
            ));
        }
        Ok(d)
    }

    /// Nearest-rank quantile estimate (`q` in 0..100): the upper edge
    /// of the bucket holding the rank-`ceil(q/100 · n)` sample. Returns
    /// `0.0` on an empty digest, matching
    /// [`percentile`](crate::metrics::percentile).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::upper(i);
            }
        }
        Self::upper(DIGEST_BUCKETS - 1)
    }
}

impl Default for QuantileDigest {
    fn default() -> Self {
        QuantileDigest::new()
    }
}

/// One recorded trace event, in sim-time microseconds. Events are
/// appended in emission order, which the kernel keeps non-decreasing
/// in `ts_us` — the monotonicity the `fleet_trace` verdict asserts.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name (span label).
    pub name: String,
    /// Chrome-trace category (`dispatch`, `shard`, `chaos`, …).
    pub cat: &'static str,
    /// Start timestamp, microseconds of *sim* time.
    pub ts_us: f64,
    /// Duration, microseconds of sim time (0 for instants).
    pub dur_us: f64,
    /// Rendered as a Chrome instant event (`ph:"i"`) instead of a
    /// complete span (`ph:"X"`).
    pub instant: bool,
    /// Track (Chrome `tid`): 0 = control plane, 1 = shard advances,
    /// 2 = completions.
    pub tid: u32,
    /// Pre-rendered JSON object interior for the event's `args` (empty
    /// = no args). Keys and values are already escaped.
    pub args: String,
}

/// Gauges sampled at one monitor tick — the sliding-window view of the
/// fleet over sim time, recorded without retaining any outcome.
#[derive(Clone, Debug)]
pub struct WindowSample {
    /// Tick timestamp, sim seconds.
    pub t_s: f64,
    /// Jobs completed so far (stream total, not per-window).
    pub completions: u64,
    /// Streamed median latency so far, seconds.
    pub p50_s: f64,
    /// Streamed p95 latency so far, seconds.
    pub p95_s: f64,
    /// Streamed p99 latency so far, seconds.
    pub p99_s: f64,
    /// SLO misses so far over completions so far (0 when none).
    pub slo_miss_rate: f64,
    /// Mean busy fraction across all boards at the tick.
    pub mean_util: f64,
    /// Dispatched-but-unstarted jobs summed over boards.
    pub queue_depth: u64,
    /// Live backlog estimate summed over boards, seconds.
    pub backlog_s: f64,
    /// Boards currently up.
    pub boards_up: u32,
    /// Boards accepting placements (up and not blacked out).
    pub boards_placeable: u32,
    /// Boards under at least one active throttle window.
    pub throttled: u32,
    /// Boards under at least one active dispatch blackout.
    pub blacked_out: u32,
    /// Feedback-layer mean |observed−predicted|/predicted so far
    /// (0 when the scenario runs without feedback).
    pub feedback_mean_abs_rel_err: f64,
    /// Feedback observations accepted so far.
    pub feedback_samples: u64,
    /// Mean EWMA correction over learned feedback cells (1.0 when none).
    pub feedback_mean_correction: f64,
}

/// Wall-clock phase accounting for one kernel run. Machine time, not
/// sim time: values depend on the host and are excluded from every
/// golden and fingerprint. All zero when the recorder is off.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseProfile {
    /// Total wall seconds inside the kernel loop.
    pub total_s: f64,
    /// Wall seconds inside `advance_all` (the execution plane).
    pub shard_advance_s: f64,
    /// Wall seconds folding advance deltas at the barrier merge.
    pub barrier_merge_s: f64,
}

impl PhaseProfile {
    /// Wall seconds in the sequential control plane — everything not
    /// attributed to shard advances or barrier merges.
    pub fn control_s(&self) -> f64 {
        (self.total_s - self.shard_advance_s - self.barrier_merge_s).max(0.0)
    }
}

/// One completion as the barrier merge reports it to the recorder,
/// pre-sorted by `(finish_s, id)` within the fold.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CompletionRecord {
    /// Completion timestamp, sim seconds.
    pub finish_s: f64,
    /// End-to-end latency (queueing + service), seconds.
    pub latency_s: f64,
    /// Resolved SLO, seconds.
    pub slo_s: f64,
    /// Job stream id.
    pub id: u32,
    /// Board the job ran on.
    pub board: usize,
    /// Workload name.
    pub workload: &'static str,
}

/// The flight recorder: owns every telemetry layer and exposes the
/// hook inventory the kernel calls. Constructed per run; never shared
/// across runs. See the module docs for the determinism argument.
pub struct FlightRecorder {
    level: TraceLevel,
    events: Vec<TraceEvent>,
    latency: QuantileDigest,
    slo_ratio: QuantileDigest,
    completions: u64,
    slo_misses: u64,
    windows: Vec<WindowSample>,
    counters: BTreeMap<&'static str, u64>,
    wall: PhaseProfile,
}

impl FlightRecorder {
    /// A recorder at the given level.
    pub fn new(level: TraceLevel) -> Self {
        FlightRecorder {
            level,
            events: Vec::new(),
            latency: QuantileDigest::new(),
            slo_ratio: QuantileDigest::new(),
            completions: 0,
            slo_misses: 0,
            windows: Vec::new(),
            counters: BTreeMap::new(),
            wall: PhaseProfile::default(),
        }
    }

    /// The disabled recorder [`FleetSim::run`](crate::sim::FleetSim::run)
    /// threads through untraced runs: every hook is one branch.
    pub fn off() -> Self {
        FlightRecorder::new(TraceLevel::Off)
    }

    /// The level this recorder captures at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Is anything being recorded at all?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level > TraceLevel::Off
    }

    /// Are per-tick window samples (and digests) being recorded?
    #[inline]
    pub fn wants_ticks(&self) -> bool {
        self.level >= TraceLevel::Ticks
    }

    /// Are structured spans being recorded?
    #[inline]
    pub fn wants_spans(&self) -> bool {
        self.level >= TraceLevel::Spans
    }

    /// Are per-job dispatch/completion events being recorded?
    #[inline]
    pub fn wants_full(&self) -> bool {
        self.level >= TraceLevel::Full
    }

    // ---- hook inventory (called by the kernel, control plane only) ------

    /// Count one occurrence of a named event in the counter registry.
    #[inline]
    pub(crate) fn bump(&mut self, name: &'static str) {
        if !self.enabled() {
            return;
        }
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Arrival handled: `job` was dispatched to `board` with the given
    /// (possibly feedback-corrected, possibly chaos-corrupted) service
    /// estimate. Emits a zero-width dispatch span at [`TraceLevel::Full`].
    #[inline]
    pub(crate) fn on_dispatch(
        &mut self,
        t_s: f64,
        id: u32,
        workload: &'static str,
        board: usize,
        est_service_s: f64,
    ) {
        if !self.enabled() {
            return;
        }
        self.bump("dispatches");
        if self.wants_full() {
            let args = format!(
                "\"job\":{id},\"board\":{board},\"est_service_us\":{:.3}",
                est_service_s * 1e6
            );
            self.events.push(TraceEvent {
                name: format!("dispatch {workload}#{id}"),
                cat: "dispatch",
                ts_us: t_s * 1e6,
                dur_us: 0.0,
                instant: false,
                tid: 0,
                args,
            });
        }
    }

    /// A job was dropped instead of dispatched (`reason` is the stable
    /// [`DropReason`](crate::state::DropReason) label).
    #[inline]
    pub(crate) fn on_drop(&mut self, t_s: f64, id: u32, reason: &'static str) {
        if !self.enabled() {
            return;
        }
        self.bump("drops");
        if self.wants_full() {
            self.events.push(TraceEvent {
                name: format!("drop #{id} ({reason})"),
                cat: "drop",
                ts_us: t_s * 1e6,
                dur_us: 0.0,
                instant: true,
                tid: 0,
                args: format!("\"job\":{id}"),
            });
        }
    }

    /// One barrier merge: the advance window `[from_s, to_s)` folded
    /// `recs` completions (sorted by `(finish_s, id)`; `to_s` may be
    /// infinite on the final drain). Emits the advance span, feeds the
    /// streaming digests, and emits per-completion instants at
    /// [`TraceLevel::Full`].
    pub(crate) fn on_window(
        &mut self,
        from_s: f64,
        to_s: f64,
        parallel: bool,
        recs: &[CompletionRecord],
    ) {
        debug_assert!(self.enabled(), "on_window called on a disabled recorder");
        if recs.is_empty() {
            return;
        }
        let end_s = if to_s.is_finite() {
            to_s
        } else {
            recs.last().map(|r| r.finish_s).unwrap_or(from_s)
        };
        if self.wants_spans() {
            self.events.push(TraceEvent {
                name: if parallel {
                    "advance (parallel)".to_string()
                } else {
                    "advance".to_string()
                },
                cat: "shard",
                ts_us: from_s * 1e6,
                dur_us: (end_s - from_s).max(0.0) * 1e6,
                instant: false,
                tid: 1,
                args: format!("\"completions\":{}", recs.len()),
            });
        }
        for r in recs {
            self.completions += 1;
            self.latency.add(r.latency_s);
            if r.slo_s > 0.0 {
                self.slo_ratio.add(r.latency_s / r.slo_s);
            }
            if r.latency_s > r.slo_s {
                self.slo_misses += 1;
            }
            if self.wants_full() {
                self.events.push(TraceEvent {
                    name: format!("complete {}#{}", r.workload, r.id),
                    cat: "completion",
                    ts_us: r.finish_s * 1e6,
                    dur_us: 0.0,
                    instant: true,
                    tid: 2,
                    args: format!(
                        "\"job\":{},\"board\":{},\"latency_us\":{:.3}",
                        r.id,
                        r.board,
                        r.latency_s * 1e6
                    ),
                });
            }
        }
        self.bump("barrier_merges");
    }

    /// One preemption scan ran at `t_s` and migrated `migrated` jobs.
    #[inline]
    pub(crate) fn on_preempt_scan(&mut self, t_s: f64, migrated: u64) {
        if !self.enabled() {
            return;
        }
        self.bump("preempt_scans");
        if self.wants_spans() {
            self.events.push(TraceEvent {
                name: format!("preempt scan ({migrated} migrated)"),
                cat: "preempt",
                ts_us: t_s * 1e6,
                dur_us: 0.0,
                instant: false,
                tid: 0,
                args: format!("\"migrated\":{migrated}"),
            });
        }
    }

    /// A churn edge: board `b` went down (`up == false`) or came back.
    #[inline]
    pub(crate) fn on_churn(&mut self, t_s: f64, b: usize, up: bool) {
        if !self.enabled() {
            return;
        }
        self.bump(if up { "board_ups" } else { "board_downs" });
        if self.wants_spans() {
            self.events.push(TraceEvent {
                name: format!("board {b} {}", if up { "up" } else { "down" }),
                cat: "churn",
                ts_us: t_s * 1e6,
                dur_us: 0.0,
                instant: true,
                tid: 0,
                args: String::new(),
            });
        }
    }

    /// A chaos clause window edge (`what` is e.g. `"throttle start"`,
    /// `label` the clause's human label).
    #[inline]
    pub(crate) fn on_chaos(&mut self, t_s: f64, what: &str, label: &str, board: usize) {
        if !self.enabled() {
            return;
        }
        self.bump("chaos_events");
        if self.wants_spans() {
            self.events.push(TraceEvent {
                name: format!("{what}: {label} (board {board})"),
                cat: "chaos",
                ts_us: t_s * 1e6,
                dur_us: 0.0,
                instant: true,
                tid: 0,
                args: String::new(),
            });
        }
    }

    /// A monitor tick sampled the fleet's gauges. The kernel only
    /// builds `sample` when [`FlightRecorder::wants_ticks`] holds.
    pub(crate) fn on_tick(&mut self, sample: WindowSample) {
        debug_assert!(self.wants_ticks(), "on_tick at level {:?}", self.level);
        if self.wants_spans() {
            self.events.push(TraceEvent {
                name: "tick".to_string(),
                cat: "tick",
                ts_us: sample.t_s * 1e6,
                dur_us: 0.0,
                instant: true,
                tid: 0,
                args: format!(
                    "\"queue_depth\":{},\"backlog_us\":{:.3}",
                    sample.queue_depth,
                    sample.backlog_s * 1e6
                ),
            });
        }
        self.bump("ticks");
        self.windows.push(sample);
    }

    /// Streamed p50/p95/p99 of latency so far, for tick sampling.
    pub(crate) fn latency_so_far(&self) -> (f64, f64, f64) {
        (
            self.latency.quantile(50.0),
            self.latency.quantile(95.0),
            self.latency.quantile(99.0),
        )
    }

    /// SLO misses so far over completions so far.
    pub fn slo_miss_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.slo_misses as f64 / self.completions as f64
        }
    }

    // ---- wall-clock phase profiling (machine time) ----------------------

    /// Start a wall-clock stopwatch — `None` when the recorder is off,
    /// so the disabled path never reads the OS clock.
    #[inline]
    pub(crate) fn stopwatch(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Charge a stopwatch to the shard-advance phase.
    #[inline]
    pub(crate) fn lap_advance(&mut self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.wall.shard_advance_s += t0.elapsed().as_secs_f64();
        }
    }

    /// Charge a stopwatch to the barrier-merge phase.
    #[inline]
    pub(crate) fn lap_merge(&mut self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.wall.barrier_merge_s += t0.elapsed().as_secs_f64();
        }
    }

    /// Charge a stopwatch to the whole kernel loop (control time is
    /// derived: total − advance − merge).
    #[inline]
    pub(crate) fn lap_total(&mut self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.wall.total_s += t0.elapsed().as_secs_f64();
        }
    }

    // ---- read side ------------------------------------------------------

    /// Every recorded trace event, emission order (non-decreasing sim
    /// timestamps).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Per-tick window samples, tick order.
    pub fn windows(&self) -> &[WindowSample] {
        &self.windows
    }

    /// The streaming latency digest.
    pub fn latency_digest(&self) -> &QuantileDigest {
        &self.latency
    }

    /// The streaming latency/SLO-ratio digest.
    pub fn slo_ratio_digest(&self) -> &QuantileDigest {
        &self.slo_ratio
    }

    /// Completions streamed through the recorder.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// The counter registry (stable name order).
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Wall-clock phase accounting (machine-dependent; all zero when
    /// the recorder was off).
    pub fn wall(&self) -> PhaseProfile {
        self.wall
    }

    /// Are the recorded event timestamps non-decreasing? (They must
    /// be — the kernel emits in sim-time order; the `fleet_trace`
    /// verdict asserts this.)
    pub fn timestamps_monotone(&self) -> bool {
        self.events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us)
    }

    /// Render the recorded events as Chrome-trace JSON (the
    /// `traceEvents` array format Perfetto and `chrome://tracing`
    /// load directly). Sim-time microseconds; metadata events name the
    /// process and the three tracks.
    pub fn render_chrome_trace(&self) -> String {
        let mut s = String::with_capacity(self.events.len() * 112 + 512);
        s.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        s.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"fleet kernel (sim time)\"}}",
        );
        for (tid, name) in [
            (0, "control plane"),
            (1, "shard advances"),
            (2, "completions"),
        ] {
            let _ = write!(
                s,
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            );
        }
        for e in &self.events {
            let _ = write!(
                s,
                ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3}",
                escape_json(&e.name),
                e.cat,
                if e.instant { "i" } else { "X" },
                e.ts_us
            );
            if e.instant {
                s.push_str(",\"s\":\"t\"");
            } else {
                let _ = write!(s, ",\"dur\":{:.3}", e.dur_us);
            }
            let _ = write!(s, ",\"pid\":0,\"tid\":{}", e.tid);
            if !e.args.is_empty() {
                let _ = write!(s, ",\"args\":{{{}}}", e.args);
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Write the Chrome-trace JSON to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render_chrome_trace())
    }
}

/// Escape a string for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---- minimal JSON well-formedness checker -------------------------------

/// Check that `s` is one well-formed JSON value (the whole input, no
/// trailing garbage). A minimal recursive-descent validator — no
/// deserialisation, no dependencies — used by the `fleet_trace` verdict
/// and the telemetry tests to prove emitted traces parse.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = JsonCheck {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(())
}

struct JsonCheck<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonCheck<'_> {
    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > 128 {
            return Err("nesting too deep".to_string());
        }
        match self.b.get(self.i) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("expected a value at byte {}", self.i)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value(depth + 1)?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value(depth + 1)?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.b.get(self.i) {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(format!("bad \\u escape at byte {}", self.i)),
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                c if c < 0x20 => {
                    return Err(format!("raw control char in string at byte {}", self.i))
                }
                _ => self.i += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let digits_start = self.i;
        while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == digits_start {
            return Err(format!("expected digits at byte {}", self.i));
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            let frac_start = self.i;
            while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == frac_start {
                return Err(format!("expected fraction digits at byte {}", self.i));
            }
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let exp_start = self.i;
            while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == exp_start {
                return Err(format!("expected exponent digits at byte {}", self.i));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::percentile;

    #[test]
    fn trace_level_parse_round_trips() {
        for l in [
            TraceLevel::Off,
            TraceLevel::Ticks,
            TraceLevel::Spans,
            TraceLevel::Full,
        ] {
            assert_eq!(TraceLevel::parse(l.name()), Some(l));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
        assert!(TraceLevel::Off < TraceLevel::Ticks);
        assert!(TraceLevel::Spans < TraceLevel::Full);
    }

    #[test]
    fn digest_empty_and_single_sample_edges() {
        let d = QuantileDigest::new();
        assert_eq!(d.count(), 0);
        assert_eq!(d.quantile(50.0), 0.0, "empty digest matches percentile");
        assert_eq!(percentile(&[], 50.0), 0.0);

        let mut d = QuantileDigest::new();
        d.add(0.0125);
        assert_eq!(d.count(), 1);
        for q in [1.0, 50.0, 99.0] {
            let est = d.quantile(q);
            assert!(
                est >= 0.0125 && est <= 0.0125 * DIGEST_GROWTH * (1.0 + 1e-12),
                "single-sample q{q} estimate {est} outside one bucket of 0.0125"
            );
        }
    }

    /// The accuracy contract: streamed p50/p95/p99 within one log
    /// bucket of the exact nearest-rank percentile on the same data.
    #[test]
    fn digest_matches_percentile_within_one_bucket() {
        // Deterministic LCG samples spanning several decades — the
        // shape (heavy tail) a latency distribution actually has.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut samples = Vec::new();
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64; // in [0,1)
            samples.push(1e-4 * (1.0 - u).powi(-2)); // Pareto-ish, 0.1ms+
        }
        let mut d = QuantileDigest::new();
        for &s in &samples {
            d.add(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [10.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            let exact = percentile(&sorted, q);
            let est = d.quantile(q);
            assert!(
                est >= exact * (1.0 - 1e-12) && est <= exact * DIGEST_GROWTH * (1.0 + 1e-12),
                "q{q}: estimate {est} not within one bucket of exact {exact}"
            );
        }
    }

    #[test]
    fn digest_is_order_independent() {
        let samples = [3e-3, 1e-4, 7.0, 2e-2, 1e-4, 0.5];
        let mut a = QuantileDigest::new();
        let mut b = QuantileDigest::new();
        for &s in &samples {
            a.add(s);
        }
        for &s in samples.iter().rev() {
            b.add(s);
        }
        for q in [25.0, 50.0, 75.0, 99.0] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
    }

    #[test]
    fn digest_clamps_hostile_samples_without_panicking() {
        let mut d = QuantileDigest::new();
        for s in [0.0, -1.0, f64::NAN, f64::NEG_INFINITY, 1e-30] {
            d.add(s);
        }
        d.add(f64::INFINITY);
        d.add(1e9); // beyond the last bucket
        assert_eq!(d.count(), 7);
        assert!(d.quantile(50.0).is_finite());
        assert!(d.quantile(100.0).is_finite());
    }

    #[test]
    fn recorder_off_records_nothing_and_reads_zero() {
        let mut r = FlightRecorder::off();
        assert!(!r.enabled() && !r.wants_ticks() && !r.wants_spans() && !r.wants_full());
        r.bump("dispatches");
        r.on_dispatch(1.0, 0, "w", 0, 0.5);
        r.on_drop(1.0, 1, "no-board-up");
        r.on_churn(2.0, 0, false);
        r.on_chaos(2.0, "throttle start", "clause", 0);
        r.on_preempt_scan(3.0, 2);
        assert!(r.stopwatch().is_none());
        r.lap_advance(None);
        assert!(r.events().is_empty());
        assert!(r.windows().is_empty());
        assert!(r.counters().is_empty());
        assert_eq!(r.completions(), 0);
        assert_eq!(r.wall().total_s, 0.0);
        assert_eq!(r.wall().control_s(), 0.0);
    }

    #[test]
    fn levels_gate_the_event_volume() {
        let recs = [CompletionRecord {
            finish_s: 2.0,
            latency_s: 0.5,
            slo_s: 1.0,
            id: 7,
            board: 1,
            workload: "w",
        }];
        let mut ticks = FlightRecorder::new(TraceLevel::Ticks);
        ticks.on_window(1.0, 3.0, false, &recs);
        ticks.on_dispatch(1.0, 7, "w", 1, 0.4);
        assert!(ticks.events().is_empty(), "ticks level emits no events");
        assert_eq!(ticks.completions(), 1);
        assert_eq!(ticks.latency_digest().count(), 1);

        let mut spans = FlightRecorder::new(TraceLevel::Spans);
        spans.on_window(1.0, 3.0, false, &recs);
        spans.on_dispatch(1.0, 7, "w", 1, 0.4);
        assert_eq!(spans.events().len(), 1, "advance span only");

        let mut full = FlightRecorder::new(TraceLevel::Full);
        full.on_window(1.0, 3.0, false, &recs);
        full.on_dispatch(3.0, 8, "w", 1, 0.4);
        assert_eq!(full.events().len(), 3, "advance + completion + dispatch");
        assert!(full.timestamps_monotone());
    }

    #[test]
    fn recorder_streams_slo_misses_and_renders_valid_json() {
        let mut r = FlightRecorder::new(TraceLevel::Full);
        let rec = |id: u32, lat: f64, slo: f64| CompletionRecord {
            finish_s: id as f64,
            latency_s: lat,
            slo_s: slo,
            id,
            board: 0,
            workload: "swap\"tions", // exercises escaping
        };
        r.on_window(0.0, 1.5, true, &[rec(0, 0.5, 1.0), rec(1, 2.0, 1.0)]);
        r.on_tick(WindowSample {
            t_s: 2.0,
            completions: r.completions(),
            p50_s: r.latency_so_far().0,
            p95_s: r.latency_so_far().1,
            p99_s: r.latency_so_far().2,
            slo_miss_rate: r.slo_miss_rate(),
            mean_util: 0.5,
            queue_depth: 3,
            backlog_s: 0.25,
            boards_up: 2,
            boards_placeable: 2,
            throttled: 0,
            blacked_out: 0,
            feedback_mean_abs_rel_err: 0.0,
            feedback_samples: 0,
            feedback_mean_correction: 1.0,
        });
        assert_eq!(r.completions(), 2);
        assert!((r.slo_miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(r.windows().len(), 1);
        assert_eq!(r.counters()["barrier_merges"], 1);
        assert!(r.timestamps_monotone());
        let json = r.render_chrome_trace();
        validate_json(&json).expect("emitted trace must be well-formed JSON");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("swap\\\"tions"));
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            "\"a\\u00e9\\n\"",
            "{\"a\":[1,2,{\"b\":true}],\"c\":null}",
            "  [ 1 , 2 ]  ",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok} should validate");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "nulle",
            "1 2",
            "\"unterminated",
            "[1] trailing",
            "-",
            "1.",
            "1e",
            "\"bad\\q\"",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
