//! Incrementally maintained argmin indexes over placeable boards.
//!
//! Every dispatcher key is a lexicographic tuple whose leading term
//! derives from [`est_busy_until_s`](crate::state::ClusterState::est_busy_until_s)
//! — an *absolute* sim-time value that changes only on board-local
//! events (enqueue, pop, in-flight estimate update, completion,
//! churn/outage/blackout edges). This module keeps each placeable
//! board filed under one of three classes so a pick touches O(log B)
//! state instead of scanning every board:
//!
//! * **Zero** — the board's busy-until is at or behind the clock, so
//!   its backlog is exactly `0.0` and *stays* `0.0` as the clock
//!   advances (an idle board, or one whose in-flight estimate has
//!   already lapsed with nothing queued). Filed globally by
//!   `(dispatched as f64, board)` — the `LeastLoaded` tie-break — and
//!   per architecture class by board index.
//! * **Ordered** — busy-until is strictly ahead of the clock and
//!   independent of it (oracle accumulator, or an online board whose
//!   in-flight finish estimate has not lapsed). Filed globally and per
//!   architecture class by `(busy_until bits, board)`; since busy and
//!   backlog are non-negative and `x ↦ (x - now).max(0)` is monotone,
//!   bit order on the stored busy value *is* backlog order.
//! * **Stale** — an online board whose in-flight finish estimate has
//!   lapsed while work is still queued (or, defensively, an idle board
//!   with queued work): its busy-until is genuinely clock-dependent
//!   (`now + Σ queued`), so it is kept on a short list and evaluated
//!   exactly per pick. Boards enter this class only when a service
//!   estimate overran, so it stays small in steady state.
//!
//! The classes are repaired *eagerly* at every mutation site (the
//! kernel calls [`refresh_dispatch_index`](crate::state::ClusterState::refresh_dispatch_index)
//! wherever it touches a board) plus two prefix sweeps when the clock
//! advances: ordered entries whose busy-until the clock has reached
//! reclassify to Zero/Stale, and in-flight estimates the clock has
//! passed (tracked in a third ordered set) demote their boards out of
//! Ordered. Each board is swept at most once per insertion, so the
//! sweeps are amortised O(log B) per event.
//!
//! The index never *computes* a key: dispatchers use it only to
//! enumerate a small candidate set that provably contains the argmin,
//! then compare candidates with the exact same floating-point
//! expressions the reference linear scan uses — which is how the
//! indexed picks reproduce the scan bit-for-bit (the `pick_crosscheck`
//! feature asserts this on every pick).

use std::collections::BTreeSet;

/// Fleets below this size keep the index disabled and dispatch via
/// the reference scan: walking a couple dozen boards is cheaper than
/// maintaining the orderings on every board-local event, and the two
/// paths pick identically, so the threshold is a pure perf knob (the
/// `fleet_chaos` quick leg, 20 boards of heavy churn, regressed ~20%
/// paying repairs it could never amortise).
pub(crate) const INDEX_MIN_BOARDS: usize = 32;

/// Which class a board is filed under (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BoardClass {
    /// Not placeable (down or blacked out): in no set.
    None,
    /// Backlog is exactly zero and stays zero as the clock advances.
    Zero {
        /// `(dispatched as f64).to_bits()` — the `LeastLoaded` tie key.
        disp_bits: u64,
    },
    /// Busy-until is ahead of the clock and independent of it.
    Ordered {
        /// Bit pattern of the absolute busy-until value.
        busy_bits: u64,
        /// Bit pattern of the in-flight finish estimate when the class
        /// must demote once the clock passes it (online mode only).
        ifl_bits: Option<u64>,
    },
    /// Busy-until depends on the clock: evaluated exactly per pick.
    Stale,
}

/// The maintained index structure. Owned by
/// [`ClusterState`](crate::state::ClusterState); all classification
/// logic lives there (it needs the live board state), this type only
/// keeps the sets consistent and answers ordered queries.
#[derive(Clone, Debug, Default)]
pub(crate) struct DispatchIndex {
    /// Is the index live? Off by default: states built by tests and
    /// benches mutate boards directly, so dispatchers fall back to the
    /// reference scan unless the owner opts in and maintains it.
    pub(crate) enabled: bool,
    /// Current class of each board (`class[b]` mirrors set membership).
    class: Vec<BoardClass>,
    /// Architecture-class id per board, first-appearance order.
    arch_of: Vec<u16>,
    /// Distinct architecture classes.
    n_arch: usize,
    /// Zero-class boards by `(dispatched bits, board)`.
    zero: BTreeSet<(u64, u32)>,
    /// Zero-class boards per architecture class, by board index.
    zero_arch: Vec<BTreeSet<u32>>,
    /// Ordered-class boards by `(busy bits, board)`.
    ordered: BTreeSet<(u64, u32)>,
    /// Ordered-class boards per architecture class.
    ordered_arch: Vec<BTreeSet<(u64, u32)>>,
    /// Ordered-class boards whose class lapses when the clock passes
    /// their in-flight finish estimate, by `(estimate bits, board)`.
    inflight: BTreeSet<(u64, u32)>,
    /// Stale-class boards, unordered (evaluated exactly per pick).
    stale: Vec<u32>,
    /// Position of each stale board in `stale` (swap-remove support).
    stale_pos: Vec<u32>,
}

impl DispatchIndex {
    /// Reset to an empty, enabled index over `arch_of.len()` boards.
    pub(crate) fn reset(&mut self, arch_of: Vec<u16>, n_arch: usize) {
        let n = arch_of.len();
        self.enabled = true;
        self.class = vec![BoardClass::None; n];
        self.arch_of = arch_of;
        self.n_arch = n_arch;
        self.zero = BTreeSet::new();
        self.zero_arch = vec![BTreeSet::new(); n_arch];
        self.ordered = BTreeSet::new();
        self.ordered_arch = vec![BTreeSet::new(); n_arch];
        self.inflight = BTreeSet::new();
        self.stale = Vec::new();
        self.stale_pos = vec![u32::MAX; n];
    }

    /// Remove board `b` from whatever sets its current class filed it
    /// in, then file it under `class`.
    pub(crate) fn set_class(&mut self, b: usize, class: BoardClass) {
        if class == self.class[b] {
            // Identical classification files identically (Stale keeps
            // its slot): skip the remove + insert round trip.
            return;
        }
        let bu = b as u32;
        let a = self.arch_of[b] as usize;
        match self.class[b] {
            BoardClass::None => {}
            BoardClass::Zero { disp_bits } => {
                self.zero.remove(&(disp_bits, bu));
                self.zero_arch[a].remove(&bu);
            }
            BoardClass::Ordered {
                busy_bits,
                ifl_bits,
            } => {
                self.ordered.remove(&(busy_bits, bu));
                self.ordered_arch[a].remove(&(busy_bits, bu));
                if let Some(fb) = ifl_bits {
                    self.inflight.remove(&(fb, bu));
                }
            }
            BoardClass::Stale => {
                let pos = self.stale_pos[b] as usize;
                let last = self.stale.len() - 1;
                self.stale.swap_remove(pos);
                if pos != last {
                    let moved = self.stale[pos] as usize;
                    self.stale_pos[moved] = pos as u32;
                }
                self.stale_pos[b] = u32::MAX;
            }
        }
        match class {
            BoardClass::None => {}
            BoardClass::Zero { disp_bits } => {
                self.zero.insert((disp_bits, bu));
                self.zero_arch[a].insert(bu);
            }
            BoardClass::Ordered {
                busy_bits,
                ifl_bits,
            } => {
                self.ordered.insert((busy_bits, bu));
                self.ordered_arch[a].insert((busy_bits, bu));
                if let Some(fb) = ifl_bits {
                    self.inflight.insert((fb, bu));
                }
            }
            BoardClass::Stale => {
                self.stale_pos[b] = self.stale.len() as u32;
                self.stale.push(bu);
            }
        }
        self.class[b] = class;
    }

    /// The earliest ordered entry at or behind `now_bits`, if any —
    /// the clock-advance sweep target.
    pub(crate) fn ordered_lapsed(&self, now_bits: u64) -> Option<usize> {
        match self.ordered.first() {
            Some(&(bits, b)) if bits <= now_bits => Some(b as usize),
            _ => None,
        }
    }

    /// The earliest filed in-flight estimate strictly behind
    /// `now_bits`, if any — the other clock-advance sweep target.
    pub(crate) fn inflight_lapsed(&self, now_bits: u64) -> Option<usize> {
        match self.inflight.first() {
            Some(&(bits, b)) if bits < now_bits => Some(b as usize),
            _ => None,
        }
    }

    /// Distinct architecture classes.
    #[inline]
    pub(crate) fn n_arch(&self) -> usize {
        self.n_arch
    }

    /// Any zero-class (backlog exactly zero) board?
    #[inline]
    pub(crate) fn has_zero(&self) -> bool {
        !self.zero.is_empty()
    }

    /// The zero-class board minimising `(dispatched, board)` — the
    /// `LeastLoaded` champion among idle boards.
    #[inline]
    pub(crate) fn zero_min(&self) -> Option<usize> {
        self.zero.first().map(|&(_, b)| b as usize)
    }

    /// The lowest-indexed zero-class board in architecture class `a` —
    /// the band champion where per-arch keys tie on everything but `b`.
    #[inline]
    pub(crate) fn zero_min_arch(&self, a: usize) -> Option<usize> {
        self.zero_arch[a].first().map(|&b| b as usize)
    }

    /// Ordered-class boards, ascending busy-until (then board index).
    #[inline]
    pub(crate) fn ordered_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.ordered.iter().map(|&(_, b)| b as usize)
    }

    /// Ordered-class boards of architecture class `a`, ascending
    /// busy-until (then board index).
    #[inline]
    pub(crate) fn ordered_iter_arch(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        self.ordered_arch[a].iter().map(|&(_, b)| b as usize)
    }

    /// Stale-class boards (unordered; evaluate exactly).
    #[inline]
    pub(crate) fn stale_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.stale.iter().map(|&b| b as usize)
    }

    /// Filed entries across every class (diagnostics / tests).
    #[cfg(test)]
    pub(crate) fn filed(&self) -> usize {
        self.zero.len() + self.ordered.len() + self.stale.len()
    }
}
