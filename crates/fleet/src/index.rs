//! Incrementally maintained argmin indexes over placeable boards.
//!
//! Every dispatcher key is a lexicographic tuple whose leading term
//! derives from [`est_busy_until_s`](crate::state::ClusterState::est_busy_until_s)
//! — an *absolute* sim-time value that changes only on board-local
//! events (enqueue, pop, in-flight estimate update, completion,
//! churn/outage/blackout edges). This module keeps each placeable
//! board filed under one of three classes so a pick touches O(log B)
//! state instead of scanning every board:
//!
//! * **Zero** — the board's busy-until is at or behind the clock, so
//!   its backlog is exactly `0.0` and *stays* `0.0` as the clock
//!   advances (an idle board, or one whose in-flight estimate has
//!   already lapsed with nothing queued). Filed globally by
//!   `(dispatched as f64, board)` — the `LeastLoaded` tie-break — and
//!   per architecture class by board index.
//! * **Ordered** — busy-until is strictly ahead of the clock and
//!   independent of it (oracle accumulator, or an online board whose
//!   in-flight finish estimate has not lapsed). Filed globally and per
//!   architecture class by `(busy_until bits, board)`; since busy and
//!   backlog are non-negative and `x ↦ (x - now).max(0)` is monotone,
//!   bit order on the stored busy value *is* backlog order.
//! * **Stale** — an online board whose in-flight finish estimate has
//!   lapsed while work is still queued (or, defensively, an idle board
//!   with queued work): its busy-until is genuinely clock-dependent
//!   (`now + Σ queued`), so no clock-free ordering over it can be
//!   maintained incrementally. Stale boards are bucketed in an ordered
//!   set keyed by lapse time, and picks are served from a cached
//!   [`StaleView`] — per-(clock, revision) global and per-architecture
//!   orderings by *exact* backlog bits — so the head equal-key groups
//!   dispatchers walk are the same ones they walk in the ordered
//!   class. The view is rebuilt lazily when the clock has moved or any
//!   stale board was refiled since the last pick; in steady state the
//!   class is near-empty (boards enter it only when a service estimate
//!   overran and feedback shrinks it again), and under a systematic-
//!   underestimation chaos clause — where most of the fleet goes stale
//!   — bursty arrivals at shared timestamps amortise one rebuild over
//!   many picks instead of degrading every pick to five linear scans.
//!   Small stale sets (≤ [`STALE_SCAN_MAX`]) skip the view and keep
//!   the exact per-pick walk: sorting a handful of boards costs more
//!   than scanning them.
//!
//! The classes are repaired *eagerly* at every mutation site (the
//! kernel calls [`refresh_dispatch_index`](crate::state::ClusterState::refresh_dispatch_index)
//! wherever it touches a board) plus two prefix sweeps when the clock
//! advances: ordered entries whose busy-until the clock has reached
//! reclassify to Zero/Stale, and in-flight estimates the clock has
//! passed (tracked in a third ordered set) demote their boards out of
//! Ordered. Each board is swept at most once per insertion, so the
//! sweeps are amortised O(log B) per event.
//!
//! The index never *computes* a key: dispatchers use it only to
//! enumerate a small candidate set that provably contains the argmin,
//! then compare candidates with the exact same floating-point
//! expressions the reference linear scan uses — which is how the
//! indexed picks reproduce the scan bit-for-bit (the `pick_crosscheck`
//! feature asserts this on every pick).

use std::cell::{Ref, RefCell};
use std::collections::BTreeSet;

/// Fleets below this size keep the index disabled and dispatch via
/// the reference scan: walking a couple dozen boards is cheaper than
/// maintaining the orderings on every board-local event, and the two
/// paths pick identically, so the threshold is a pure perf knob (the
/// `fleet_chaos` quick leg, 20 boards of heavy churn, regressed ~20%
/// paying repairs it could never amortise).
pub(crate) const INDEX_MIN_BOARDS: usize = 32;

/// Stale sets at or below this size are walked exactly per pick
/// instead of going through the cached [`StaleView`]: collecting and
/// sorting a handful of boards costs more than evaluating them
/// directly, and small sets are the steady state (boards only go
/// stale when a service estimate overran).
pub(crate) const STALE_SCAN_MAX: usize = 16;

/// Which class a board is filed under (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BoardClass {
    /// Not placeable (down or blacked out): in no set.
    None,
    /// Backlog is exactly zero and stays zero as the clock advances.
    Zero {
        /// `(dispatched as f64).to_bits()` — the `LeastLoaded` tie key.
        disp_bits: u64,
    },
    /// Busy-until is ahead of the clock and independent of it.
    Ordered {
        /// Bit pattern of the absolute busy-until value.
        busy_bits: u64,
        /// Bit pattern of the in-flight finish estimate when the class
        /// must demote once the clock passes it (online mode only).
        ifl_bits: Option<u64>,
    },
    /// Busy-until depends on the clock: bucketed by lapse time and
    /// served through the cached [`StaleView`].
    Stale {
        /// Bit pattern of the in-flight finish estimate that lapsed
        /// (`0` for an idle board with queued work) — the bucket key.
        /// Identical keys still invalidate the view on refile: the
        /// board's backlog may have moved even though its lapse time
        /// did not.
        lapse_bits: u64,
    },
}

/// Cached orderings over the stale class, valid for one `(clock,
/// revision)` pair. Stale backlogs are clock-dependent (`fold(now) −
/// now` — the bits genuinely change as `now` moves), so the view is
/// rebuilt from exact per-board backlog bits whenever the clock has
/// advanced or any stale board was refiled, and reused verbatim across
/// the picks in between (bursty arrivals at one timestamp, the hot
/// adversarial pattern). Since backlogs are non-negative and finite,
/// bit order *is* numeric order, and dispatchers walk the same head
/// equal-key groups they walk in the ordered class.
#[derive(Clone, Debug, Default)]
pub(crate) struct StaleView {
    /// Clock bits the view was built at.
    now_bits: u64,
    /// `stale_rev` the view was built at.
    rev: u64,
    /// Every stale board by `(backlog bits, board)`, ascending.
    by_bl: Vec<(u64, u32)>,
    /// Stale boards per architecture class, same order.
    by_bl_arch: Vec<Vec<(u64, u32)>>,
}

impl StaleView {
    /// All stale boards, ascending `(backlog bits, board)`.
    #[inline]
    pub(crate) fn all(&self) -> &[(u64, u32)] {
        &self.by_bl
    }

    /// Stale boards of architecture class `a`, same order.
    #[inline]
    pub(crate) fn arch(&self, a: usize) -> &[(u64, u32)] {
        &self.by_bl_arch[a]
    }
}

/// The maintained index structure. Owned by
/// [`ClusterState`](crate::state::ClusterState); all classification
/// logic lives there (it needs the live board state), this type only
/// keeps the sets consistent and answers ordered queries.
#[derive(Clone, Debug, Default)]
pub(crate) struct DispatchIndex {
    /// Is the index live? Off by default: states built by tests and
    /// benches mutate boards directly, so dispatchers fall back to the
    /// reference scan unless the owner opts in and maintains it.
    pub(crate) enabled: bool,
    /// Current class of each board (`class[b]` mirrors set membership).
    class: Vec<BoardClass>,
    /// Architecture-class id per board, first-appearance order.
    arch_of: Vec<u16>,
    /// Distinct architecture classes.
    n_arch: usize,
    /// Zero-class boards by `(dispatched bits, board)`.
    zero: BTreeSet<(u64, u32)>,
    /// Zero-class boards per architecture class, by board index.
    zero_arch: Vec<BTreeSet<u32>>,
    /// Ordered-class boards by `(busy bits, board)`.
    ordered: BTreeSet<(u64, u32)>,
    /// Ordered-class boards per architecture class.
    ordered_arch: Vec<BTreeSet<(u64, u32)>>,
    /// Ordered-class boards whose class lapses when the clock passes
    /// their in-flight finish estimate, by `(estimate bits, board)`.
    inflight: BTreeSet<(u64, u32)>,
    /// Stale-class boards by `(lapse bits, board)` — ordered by when
    /// their in-flight estimate lapsed, so rebuild order (and the
    /// fallback exact walk) is deterministic.
    stale: BTreeSet<(u64, u32)>,
    /// Bumped whenever any board enters, leaves or refiles within the
    /// stale class; part of the [`StaleView`] cache key.
    stale_rev: u64,
    /// Cached per-(clock, revision) stale orderings, rebuilt lazily on
    /// first use after an invalidation (interior mutability: picks
    /// hold `&ClusterState`).
    stale_view: RefCell<StaleView>,
}

impl DispatchIndex {
    /// Reset to an empty, enabled index over `arch_of.len()` boards.
    pub(crate) fn reset(&mut self, arch_of: Vec<u16>, n_arch: usize) {
        let n = arch_of.len();
        self.enabled = true;
        self.class = vec![BoardClass::None; n];
        self.arch_of = arch_of;
        self.n_arch = n_arch;
        self.zero = BTreeSet::new();
        self.zero_arch = vec![BTreeSet::new(); n_arch];
        self.ordered = BTreeSet::new();
        self.ordered_arch = vec![BTreeSet::new(); n_arch];
        self.inflight = BTreeSet::new();
        self.stale = BTreeSet::new();
        // Keep the revision monotone across resets so a view cached
        // before a rebuild can never alias a fresh (clock, revision)
        // pair.
        self.stale_rev += 1;
    }

    /// Remove board `b` from whatever sets its current class filed it
    /// in, then file it under `class`.
    pub(crate) fn set_class(&mut self, b: usize, class: BoardClass) {
        // Any refile touching the stale class invalidates the cached
        // view — including an identical reclassification: a queue
        // mutation moves a stale board's backlog without moving its
        // lapse key, and the view orders by backlog.
        if matches!(class, BoardClass::Stale { .. })
            || matches!(self.class[b], BoardClass::Stale { .. })
        {
            self.stale_rev += 1;
        }
        if class == self.class[b] {
            // Identical classification files identically: skip the
            // remove + insert round trip.
            return;
        }
        let bu = b as u32;
        let a = self.arch_of[b] as usize;
        match self.class[b] {
            BoardClass::None => {}
            BoardClass::Zero { disp_bits } => {
                self.zero.remove(&(disp_bits, bu));
                self.zero_arch[a].remove(&bu);
            }
            BoardClass::Ordered {
                busy_bits,
                ifl_bits,
            } => {
                self.ordered.remove(&(busy_bits, bu));
                self.ordered_arch[a].remove(&(busy_bits, bu));
                if let Some(fb) = ifl_bits {
                    self.inflight.remove(&(fb, bu));
                }
            }
            BoardClass::Stale { lapse_bits } => {
                self.stale.remove(&(lapse_bits, bu));
            }
        }
        match class {
            BoardClass::None => {}
            BoardClass::Zero { disp_bits } => {
                self.zero.insert((disp_bits, bu));
                self.zero_arch[a].insert(bu);
            }
            BoardClass::Ordered {
                busy_bits,
                ifl_bits,
            } => {
                self.ordered.insert((busy_bits, bu));
                self.ordered_arch[a].insert((busy_bits, bu));
                if let Some(fb) = ifl_bits {
                    self.inflight.insert((fb, bu));
                }
            }
            BoardClass::Stale { lapse_bits } => {
                self.stale.insert((lapse_bits, bu));
            }
        }
        self.class[b] = class;
    }

    /// The earliest ordered entry at or behind `now_bits`, if any —
    /// the clock-advance sweep target.
    pub(crate) fn ordered_lapsed(&self, now_bits: u64) -> Option<usize> {
        match self.ordered.first() {
            Some(&(bits, b)) if bits <= now_bits => Some(b as usize),
            _ => None,
        }
    }

    /// The earliest filed in-flight estimate strictly behind
    /// `now_bits`, if any — the other clock-advance sweep target.
    pub(crate) fn inflight_lapsed(&self, now_bits: u64) -> Option<usize> {
        match self.inflight.first() {
            Some(&(bits, b)) if bits < now_bits => Some(b as usize),
            _ => None,
        }
    }

    /// Distinct architecture classes.
    #[inline]
    pub(crate) fn n_arch(&self) -> usize {
        self.n_arch
    }

    /// Any zero-class (backlog exactly zero) board?
    #[inline]
    pub(crate) fn has_zero(&self) -> bool {
        !self.zero.is_empty()
    }

    /// The zero-class board minimising `(dispatched, board)` — the
    /// `LeastLoaded` champion among idle boards.
    #[inline]
    pub(crate) fn zero_min(&self) -> Option<usize> {
        self.zero.first().map(|&(_, b)| b as usize)
    }

    /// The lowest-indexed zero-class board in architecture class `a` —
    /// the band champion where per-arch keys tie on everything but `b`.
    #[inline]
    pub(crate) fn zero_min_arch(&self, a: usize) -> Option<usize> {
        self.zero_arch[a].first().map(|&b| b as usize)
    }

    /// Ordered-class boards, ascending busy-until (then board index).
    #[inline]
    pub(crate) fn ordered_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.ordered.iter().map(|&(_, b)| b as usize)
    }

    /// Ordered-class boards of architecture class `a`, ascending
    /// busy-until (then board index).
    #[inline]
    pub(crate) fn ordered_iter_arch(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        self.ordered_arch[a].iter().map(|&(_, b)| b as usize)
    }

    /// Stale-class boards, ascending `(lapse time, board)` — the exact
    /// per-pick walk for small sets (and the deterministic rebuild
    /// order for the view).
    #[inline]
    pub(crate) fn stale_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.stale.iter().map(|&(_, b)| b as usize)
    }

    /// The cached stale orderings for the current clock, or `None`
    /// when the stale set is small enough (≤ [`STALE_SCAN_MAX`]) that
    /// the caller should walk [`stale_iter`](Self::stale_iter)
    /// exactly. `backlog_bits` must return board `b`'s exact current
    /// backlog bits (the same value the pick's key expressions read);
    /// it is only invoked on a rebuild — when the clock has moved or a
    /// stale board was refiled since the view was last built.
    pub(crate) fn stale_view(
        &self,
        now_bits: u64,
        backlog_bits: impl Fn(usize) -> u64,
    ) -> Option<Ref<'_, StaleView>> {
        if self.stale.len() <= STALE_SCAN_MAX {
            return None;
        }
        {
            let v = self.stale_view.borrow();
            if v.now_bits == now_bits && v.rev == self.stale_rev {
                return Some(v);
            }
        }
        let mut v = self.stale_view.borrow_mut();
        v.now_bits = now_bits;
        v.rev = self.stale_rev;
        v.by_bl.clear();
        if v.by_bl_arch.len() != self.n_arch {
            v.by_bl_arch.resize(self.n_arch, Vec::new());
        }
        for arch in &mut v.by_bl_arch {
            arch.clear();
        }
        for &(_, b) in &self.stale {
            v.by_bl.push((backlog_bits(b as usize), b));
        }
        v.by_bl.sort_unstable();
        for i in 0..v.by_bl.len() {
            let (bits, b) = v.by_bl[i];
            v.by_bl_arch[self.arch_of[b as usize] as usize].push((bits, b));
        }
        drop(v);
        Some(self.stale_view.borrow())
    }

    /// Filed entries across every class (diagnostics / tests).
    #[cfg(test)]
    pub(crate) fn filed(&self) -> usize {
        self.zero.len() + self.ordered.len() + self.stale.len()
    }

    /// Stale entries currently filed (diagnostics / tests).
    #[cfg(test)]
    pub(crate) fn stale_len(&self) -> usize {
        self.stale.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(n: usize) -> DispatchIndex {
        let mut idx = DispatchIndex::default();
        // Two architecture classes, alternating by parity.
        idx.reset((0..n).map(|b| (b % 2) as u16).collect(), 2);
        idx
    }

    /// The view only engages past `STALE_SCAN_MAX`, orders by exact
    /// backlog bits globally and per class, and is reused verbatim
    /// while `(clock, revision)` is unchanged.
    #[test]
    fn stale_view_engages_sorts_and_caches() {
        let n = STALE_SCAN_MAX + 4;
        let mut idx = index(n);
        for b in 0..STALE_SCAN_MAX {
            idx.set_class(
                b,
                BoardClass::Stale {
                    lapse_bits: b as u64,
                },
            );
        }
        // At the threshold: callers must walk the exact iterator.
        assert!(idx.stale_view(1, |_| 0).is_none());
        for b in STALE_SCAN_MAX..n {
            idx.set_class(
                b,
                BoardClass::Stale {
                    lapse_bits: b as u64,
                },
            );
        }
        assert_eq!(idx.stale_len(), n);
        // Backlog descending in board index → the view must re-sort.
        let bl = |b: usize| (n - b) as u64;
        let view = idx.stale_view(1, bl).expect("past the threshold");
        let all: Vec<(u64, u32)> = view.all().to_vec();
        assert_eq!(all.len(), n);
        assert!(all.windows(2).all(|w| w[0] <= w[1]), "sorted by backlog");
        assert_eq!(all[0], (1, (n - 1) as u32), "deepest board files first");
        for a in 0..2 {
            assert!(view.arch(a).iter().all(|&(_, b)| b as usize % 2 == a));
            assert!(view.arch(a).windows(2).all(|w| w[0] <= w[1]));
        }
        drop(view);
        // Same clock, same revision: the rebuild closure must not run.
        let cached = idx
            .stale_view(1, |_| panic!("cache hit must not rebuild"))
            .expect("cached");
        assert_eq!(cached.all(), &all[..]);
        drop(cached);
        // A clock move alone invalidates (stale backlogs are
        // clock-dependent).
        let moved = idx.stale_view(2, |b| b as u64).expect("rebuilt");
        assert_eq!(moved.all()[0], (0, 0));
        drop(moved);
        // A refile under the *same* lapse key still invalidates: the
        // board's backlog may have moved even though its key did not.
        idx.set_class(3, BoardClass::Stale { lapse_bits: 3 });
        let rebuilt = idx.stale_view(2, |b| (n - b) as u64).expect("rebuilt");
        assert_eq!(rebuilt.all()[0], (1, (n - 1) as u32));
        drop(rebuilt);
        // Leaving the class shrinks the set below the threshold + 1;
        // dropping to the threshold disengages the view entirely.
        for b in 0..4 {
            idx.set_class(b, BoardClass::None);
        }
        assert_eq!(idx.stale_len(), n - 4);
        assert!(idx.stale_view(2, |_| 0).is_none());
    }

    /// The stale set itself stays ordered by `(lapse time, board)` so
    /// the fallback exact walk and rebuild order are deterministic.
    #[test]
    fn stale_set_orders_by_lapse_time() {
        let mut idx = index(6);
        for (b, lapse) in [(4usize, 7u64), (1, 3), (5, 3), (0, 9)] {
            idx.set_class(b, BoardClass::Stale { lapse_bits: lapse });
        }
        let walked: Vec<usize> = idx.stale_iter().collect();
        assert_eq!(walked, vec![1, 5, 4, 0]);
        assert_eq!(idx.filed(), 4);
    }
}
