//! The cluster model: N independent big.LITTLE boards.
//!
//! Boards do not share memory or caches — the fleet's unit of placement
//! is a whole job on a whole board, like a rack of single-board
//! computers behind a dispatcher. Heterogeneous clusters mix big-rich
//! (Odroid XU4) and LITTLE-rich (RK3399) architectures so placement
//! quality is observable.

use astro_hw::boards::BoardSpec;

/// A named fleet of boards.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// The boards, in dispatch index order.
    pub boards: Vec<BoardSpec>,
}

impl ClusterSpec {
    /// `n` identical boards.
    pub fn homogeneous(n: usize, board: BoardSpec) -> Self {
        ClusterSpec {
            boards: (0..n).map(|_| board.clone()).collect(),
        }
    }

    /// `n` boards alternating big-rich Odroid XU4 and LITTLE-rich
    /// RK3399 (even indices are XU4s, so any prefix is ~half and half).
    pub fn heterogeneous(n: usize) -> Self {
        ClusterSpec {
            boards: (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        BoardSpec::odroid_xu4()
                    } else {
                        BoardSpec::rk3399()
                    }
                })
                .collect(),
        }
    }

    /// Number of boards.
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// Is the cluster empty?
    pub fn is_empty(&self) -> bool {
        self.boards.is_empty()
    }

    /// Stable architecture key of board `b` — policy-cache entries and
    /// service profiles are shared between boards with equal keys.
    pub fn arch_key(&self, b: usize) -> &'static str {
        self.boards[b].name
    }

    /// Is board `b` big-rich (at least as many big as LITTLE cores)?
    pub fn big_rich(&self, b: usize) -> bool {
        self.boards[b].num_big >= self.boards[b].num_little
    }

    /// Index of the first board with architecture key `key`. Panics on
    /// a key the cluster does not contain (keys come from
    /// [`ClusterSpec::arch_keys`]).
    pub fn representative_board_idx(&self, key: &str) -> usize {
        (0..self.len())
            .find(|&b| self.arch_key(b) == key)
            .expect("architecture key not present in this cluster")
    }

    /// The first board with architecture key `key` (see
    /// [`ClusterSpec::representative_board_idx`]).
    pub fn representative_board(&self, key: &str) -> &BoardSpec {
        &self.boards[self.representative_board_idx(key)]
    }

    /// The distinct architecture keys present, in first-appearance order.
    pub fn arch_keys(&self) -> Vec<&'static str> {
        let mut keys: Vec<&'static str> = Vec::new();
        for b in 0..self.len() {
            if !keys.contains(&self.arch_key(b)) {
                keys.push(self.arch_key(b));
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_mixes_architectures() {
        let c = ClusterSpec::heterogeneous(6);
        assert_eq!(c.len(), 6);
        assert_eq!(c.arch_keys().len(), 2);
        assert!(c.big_rich(0));
        assert!(!c.big_rich(1));
        // Boards sharing an arch share the key.
        assert_eq!(c.arch_key(0), c.arch_key(2));
        assert_ne!(c.arch_key(0), c.arch_key(1));
    }

    #[test]
    fn homogeneous_has_one_key() {
        let c = ClusterSpec::homogeneous(4, BoardSpec::odroid_xu4());
        assert_eq!(c.arch_keys().len(), 1);
        assert!(!c.is_empty());
    }
}
