//! The discrete-event fleet kernel: a virtual-clock event loop driving
//! online dispatch, preemptive redispatch and board churn, executed
//! over a sharded state plane.
//!
//! Earlier revisions planned every placement in one sequential batch
//! pass and only then executed boards; PR 4 replaced that with a
//! single event loop over a monotone virtual clock, and this revision
//! splits that loop into two planes so board count stops being a
//! sequential bottleneck:
//!
//! * **The control plane** (this module) owns every decision that
//!   reads global state: [`EventKind::Arrival`] (dispatcher invoked
//!   *now* against the live [`ClusterState`]),
//!   [`EventKind::MonitorTick`] (preemptive redispatch of predicted
//!   SLO-missers), and [`EventKind::BoardDown`] /
//!   [`EventKind::BoardUp`] churn. It runs sequentially, in one
//!   deterministic (time, seed-order) sequence, because online
//!   dispatch observes every board at once.
//! * **The execution plane** ([`crate::shard`]) owns everything that
//!   is board-local: [`EventKind::Completion`] chains — a board
//!   finishing a job and starting its next — partitioned into
//!   [`crate::shard::ShardSet`] shards that advance independently
//!   between control timestamps and fold back at a barrier merge.
//!   Placements are routed to shards as typed
//!   [`crate::shard::ShardMsg`] values.
//!
//! Everything stays seed-deterministic *and shard-count-invariant*:
//! events at equal timestamps keep the sequential kernel's order
//! except same-time completions on different boards, which commute;
//! every service time is a pure function of the request; and
//! order-sensitive feedback observations are merged in (time, id)
//! order at the barrier. `shards = 1` *is* the PR 4 kernel,
//! byte-for-byte. [`DispatchMode::Oracle`] reproduces the original
//! batch planner's placements through this same loop, so historical
//! comparisons stay meaningful; [`DispatchMode::Online`] is the
//! live-feedback upgrade, and [`Scenario::with_feedback`] closes the
//! loop further by correcting profiled estimates with observed
//! service times.

use crate::arrival::{ArrivalCursor, SliceCursor};
use crate::cache::{CacheDecision, PolicyCache};
use crate::chaos::{ChaosSchedule, ChaosStats, CompiledChaos};
use crate::checkpoint::{self, CheckpointError, CursorState, Dec, Enc};
use crate::dispatch::{Dispatcher, JobEstimates};
use crate::feedback::ServiceFeedback;
use crate::job::{JobOutcome, JobSpec};
use crate::metrics::{FleetMetrics, FleetOutcome, StreamAgg};
use crate::shard::{AdvanceCtx, AdvanceDelta, ProgramSet, ShardMsg, ShardSet};
use crate::sim::{FleetSim, PolicyMode, ProfileTable};
use crate::state::{BoardState, ClusterState, DispatchMode, DropReason, DroppedJob, QueuedJob};
use crate::telemetry::{CompletionRecord, FlightRecorder, WindowSample};
use astro_core::pipeline::build_static;
use astro_core::replay::ReplaySession;
use astro_exec::executor::{Executor, MachineExecutor};
use astro_exec::program::compile;
use astro_ir::Module;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// What happens at an event's timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Job `jobs[i]` enters the system.
    Arrival(u32),
    /// The board's in-flight job finishes.
    Completion {
        /// Board index.
        board: u32,
    },
    /// Periodic observation point (preemption scans run here).
    MonitorTick,
    /// Board churn: the board stops accepting work and its queue is
    /// redistributed (the in-flight job drains).
    BoardDown(u32),
    /// Board churn: the board is available again.
    BoardUp(u32),
    /// Chaos: a thermal-throttle window opens on the board. The clause
    /// index resolves the factor in the compiled schedule (kept out of
    /// the event so [`EventKind`] stays `Copy + Eq`).
    ThrottleStart {
        /// Board index.
        board: u32,
        /// Index into the scenario's chaos clauses.
        clause: u32,
    },
    /// Chaos: the matching throttle window closes.
    ThrottleEnd {
        /// Board index.
        board: u32,
        /// Index into the scenario's chaos clauses.
        clause: u32,
    },
    /// Chaos: a dispatch-blackout window opens on the board (it keeps
    /// executing but accepts no new placements).
    BlackoutStart {
        /// Board index.
        board: u32,
        /// Index into the scenario's chaos clauses.
        clause: u32,
    },
    /// Chaos: the matching blackout window closes.
    BlackoutEnd {
        /// Board index.
        board: u32,
        /// Index into the scenario's chaos clauses.
        clause: u32,
    },
}

impl EventKind {
    /// Is this a fleet *state change* (churn or chaos window edge)?
    /// State changes beat arrivals at equal timestamps — the pinned
    /// control tie order churn < chaos < arrival < monitor tick.
    fn is_state_change(self) -> bool {
        matches!(
            self,
            EventKind::BoardDown(_)
                | EventKind::BoardUp(_)
                | EventKind::ThrottleStart { .. }
                | EventKind::ThrottleEnd { .. }
                | EventKind::BlackoutStart { .. }
                | EventKind::BlackoutEnd { .. }
        )
    }
}

/// One scheduled event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Virtual timestamp, seconds.
    pub time_s: f64,
    /// Push order — the deterministic tie-breaker at equal timestamps.
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time_s.total_cmp(&other.time_s) == Ordering::Equal && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Min-first: earliest timestamp, then earliest push.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_s
            .total_cmp(&self.time_s)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A pending-event queue: a binary heap popping the earliest timestamp
/// first, ties broken by push order so processing is deterministic
/// whatever the float values. The control plane keeps one for churn
/// and monitor ticks; every shard keeps one for its boards'
/// completions.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    /// Events ever pushed.
    pub pushed: u64,
    /// Events ever popped.
    pub popped: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` at `time_s`.
    pub fn push(&mut self, time_s: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Event { time_s, seq, kind });
    }

    /// Earliest event, earliest push first at equal times.
    pub fn pop(&mut self) -> Option<Event> {
        let ev = self.heap.pop();
        if ev.is_some() {
            self.popped += 1;
        }
        ev
    }

    /// The earliest pending event, without popping it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek()
    }

    /// Pop the earliest event only if it is strictly before `to_s`.
    pub fn pop_before(&mut self, to_s: f64) -> Option<Event> {
        match self.heap.peek() {
            Some(ev) if ev.time_s < to_s => self.pop(),
            _ => None,
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is anything pending?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl EventQueue {
    /// Serialises the queue for a checkpoint: `next_seq` (so pushes
    /// after a restore keep globally unique tie-breakers), the lifetime
    /// counters, and every pending event ordered by (time, seq) — the
    /// deterministic pop order itself, so the encoding is canonical
    /// whatever heap shape produced it.
    pub(crate) fn encode(&self, enc: &mut Enc) {
        enc.u64(self.next_seq);
        enc.u64(self.pushed);
        enc.u64(self.popped);
        let mut entries: Vec<Event> = self.heap.iter().copied().collect();
        entries.sort_by(|a, b| a.time_s.total_cmp(&b.time_s).then(a.seq.cmp(&b.seq)));
        enc.usize(entries.len());
        for ev in &entries {
            enc.f64(ev.time_s);
            enc.u64(ev.seq);
            match ev.kind {
                EventKind::MonitorTick => enc.u8(0),
                EventKind::BoardDown(b) => {
                    enc.u8(1);
                    enc.u32(b);
                }
                EventKind::BoardUp(b) => {
                    enc.u8(2);
                    enc.u32(b);
                }
                EventKind::ThrottleStart { board, clause } => {
                    enc.u8(3);
                    enc.u32(board);
                    enc.u32(clause);
                }
                EventKind::ThrottleEnd { board, clause } => {
                    enc.u8(4);
                    enc.u32(board);
                    enc.u32(clause);
                }
                EventKind::BlackoutStart { board, clause } => {
                    enc.u8(5);
                    enc.u32(board);
                    enc.u32(clause);
                }
                EventKind::BlackoutEnd { board, clause } => {
                    enc.u8(6);
                    enc.u32(board);
                    enc.u32(clause);
                }
                EventKind::Arrival(_) | EventKind::Completion { .. } => {
                    unreachable!("control queue never holds arrival/completion events")
                }
            }
        }
    }

    /// Rebuilds a control queue from [`EventQueue::encode`]d bytes.
    /// Every event is validated — finite non-negative timestamp, seq
    /// below `next_seq`, board and clause indices in range, and only
    /// control-plane kinds (arrivals stream through the cursor and
    /// completions live in shard queues, never here).
    pub(crate) fn decode(
        dec: &mut Dec<'_>,
        n_boards: usize,
        n_clauses: usize,
    ) -> Result<EventQueue, CheckpointError> {
        let next_seq = dec.u64()?;
        let pushed = dec.u64()?;
        let popped = dec.u64()?;
        let n = dec.count(17)?;
        let mut q = EventQueue {
            heap: BinaryHeap::with_capacity(n),
            next_seq,
            pushed,
            popped,
        };
        for _ in 0..n {
            let time_s = dec.f64()?;
            if !time_s.is_finite() || time_s < 0.0 {
                return Err(CheckpointError::Corrupt(
                    "event timestamp is not finite and non-negative",
                ));
            }
            let seq = dec.u64()?;
            if seq >= next_seq {
                return Err(CheckpointError::Corrupt(
                    "event seq at or past the queue's next_seq",
                ));
            }
            let tag = dec.u8()?;
            let kind = match tag {
                0 => EventKind::MonitorTick,
                1 | 2 => {
                    let b = dec.u32()?;
                    if b as usize >= n_boards {
                        return Err(CheckpointError::Corrupt(
                            "churn event board index out of range",
                        ));
                    }
                    if tag == 1 {
                        EventKind::BoardDown(b)
                    } else {
                        EventKind::BoardUp(b)
                    }
                }
                3..=6 => {
                    let board = dec.u32()?;
                    let clause = dec.u32()?;
                    if board as usize >= n_boards {
                        return Err(CheckpointError::Corrupt(
                            "chaos event board index out of range",
                        ));
                    }
                    if clause as usize >= n_clauses {
                        return Err(CheckpointError::Corrupt(
                            "chaos event clause index out of range",
                        ));
                    }
                    match tag {
                        3 => EventKind::ThrottleStart { board, clause },
                        4 => EventKind::ThrottleEnd { board, clause },
                        5 => EventKind::BlackoutStart { board, clause },
                        _ => EventKind::BlackoutEnd { board, clause },
                    }
                }
                _ => return Err(CheckpointError::Corrupt("control event tag out of range")),
            };
            q.heap.push(Event { time_s, seq, kind });
        }
        Ok(q)
    }
}

/// One board leaving or (re)joining the fleet mid-run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnEvent {
    /// When, seconds.
    pub time_s: f64,
    /// Which board.
    pub board: usize,
    /// `true` = joins, `false` = leaves.
    pub up: bool,
}

/// What one kernel run does beyond dispatching: mode, churn schedule,
/// preemptive redispatch, observed-service feedback.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Cold stock binaries vs warm cached Astro policies.
    pub policy: PolicyMode,
    /// Which backlog estimate dispatchers observe.
    pub dispatch: DispatchMode,
    /// Board up/down schedule (empty = stable fleet).
    pub churn: Vec<ChurnEvent>,
    /// Migrate queued jobs predicted to miss their SLO at monitor ticks.
    /// Requires [`DispatchMode::Online`] and a positive tick interval.
    pub preemption: bool,
    /// Monitor tick period, seconds (`0` = no ticks).
    pub monitor_interval_s: f64,
    /// Service-time penalty each migration/redistribution pays (state
    /// transfer), seconds.
    pub migration_cost_s: f64,
    /// Total migrations allowed per job before the preemption scan
    /// stops considering it. The counter it gates
    /// ([`QueuedJob::migrations`](crate::state::QueuedJob)) includes
    /// churn redistributions as well as preemptive moves — the PR 4
    /// semantics, preserved bit-for-bit.
    pub max_migrations: u32,
    /// Churn redistributions allowed per job before it is dropped with
    /// [`DropReason::MigrationCap`]. Counted by its own
    /// [`QueuedJob::redispatches`](crate::state::QueuedJob) counter,
    /// so preemptive migrations never consume this cap. The default
    /// (`u32::MAX`) reproduces the uncapped PR 4 behaviour: a down
    /// board's queue must go somewhere.
    pub max_redispatches: u32,
    /// Feed observed service times from completions back into
    /// dispatch-time estimates through the per-(taxon, architecture)
    /// EWMA layer ([`ServiceFeedback`]).
    pub feedback: bool,
    /// Adversarial chaos clauses compiled into the control-plane event
    /// stream (empty = no chaos; the no-chaos paths are bit-for-bit
    /// the PR 5 kernel — the golden tests pin this).
    pub chaos: ChaosSchedule,
}

impl Scenario {
    /// Batch-equivalent semantics: oracle estimates, stable fleet, no
    /// preemption — the configuration that reproduces the three-stage
    /// planner's placements through the event kernel.
    pub fn oracle(policy: PolicyMode) -> Self {
        Scenario {
            policy,
            dispatch: DispatchMode::Oracle,
            churn: Vec::new(),
            preemption: false,
            monitor_interval_s: 0.0,
            migration_cost_s: 0.0,
            max_migrations: 2,
            max_redispatches: u32::MAX,
            feedback: false,
            chaos: ChaosSchedule::default(),
        }
    }

    /// Live dispatch against observable cluster state.
    pub fn online(policy: PolicyMode) -> Self {
        Scenario {
            dispatch: DispatchMode::Online,
            ..Scenario::oracle(policy)
        }
    }

    /// Add a board churn schedule.
    pub fn with_churn(mut self, churn: Vec<ChurnEvent>) -> Self {
        self.churn = churn;
        self
    }

    /// Enable deadline-driven preemptive redispatch: scan every
    /// `interval_s`, migrate at cost `cost_s`, at most `max_migrations`
    /// times per job.
    pub fn with_preemption(mut self, interval_s: f64, cost_s: f64, max_migrations: u32) -> Self {
        assert!(
            interval_s > 0.0,
            "preemption needs a positive tick interval"
        );
        self.preemption = true;
        self.monitor_interval_s = interval_s;
        self.migration_cost_s = cost_s;
        self.max_migrations = max_migrations;
        self
    }

    /// Set the migration cost without enabling preemption (churn
    /// redistribution pays it too).
    pub fn with_migration_cost(mut self, cost_s: f64) -> Self {
        self.migration_cost_s = cost_s;
        self
    }

    /// Cap churn redistributions per job: a job orphaned by board
    /// churn more than `cap` times is dropped with
    /// [`DropReason::MigrationCap`] instead of bouncing forever.
    pub fn with_redispatch_cap(mut self, cap: u32) -> Self {
        self.max_redispatches = cap;
        self
    }

    /// Attach a chaos schedule: its clauses are validated against the
    /// churn schedule at run start and compiled into the control-plane
    /// event stream (see [`crate::chaos`]). Traffic clauses are *not*
    /// applied here — shape the job stream with
    /// [`ArrivalProcess::generate_shaped`](crate::arrival::ArrivalProcess::generate_shaped).
    pub fn with_chaos(mut self, chaos: ChaosSchedule) -> Self {
        self.chaos = chaos;
        self
    }

    /// Enable the observed-service feedback layer: completions teach a
    /// per-(taxon, architecture) EWMA correction that dispatch-time
    /// estimates — and therefore the phase-aware and energy-aware
    /// dispatchers, backlog predictions and preemption scans — consult
    /// on every subsequent decision.
    pub fn with_feedback(mut self) -> Self {
        self.feedback = true;
        self
    }

    /// `policy/dispatch` label for reports (`+fb` when the feedback
    /// layer is on).
    pub fn label(&self) -> String {
        format!(
            "{}/{}{}",
            self.policy.name(),
            self.dispatch.name(),
            if self.feedback { "+fb" } else { "" }
        )
    }
}

/// Event accounting for one kernel run. Invariant at exit:
/// `arrivals == completions + dropped` and
/// `dropped == dropped_no_board + dropped_migration_cap`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Events processed.
    pub events: u64,
    /// Arrival events.
    pub arrivals: u64,
    /// Completion events.
    pub completions: u64,
    /// Jobs dropped (all reasons).
    pub dropped: u64,
    /// Jobs dropped because no board was up to take them.
    pub dropped_no_board: u64,
    /// Jobs dropped because churn redistributed them past
    /// [`Scenario::max_redispatches`].
    pub dropped_migration_cap: u64,
    /// Preemptive (SLO-driven) migrations.
    pub migrations: u64,
    /// Churn-driven queue redistributions.
    pub redistributions: u64,
    /// Monitor ticks processed.
    pub ticks: u64,
    /// Boards taken down (scenario churn and chaos rack outages both
    /// land here — outages *are* churn events).
    pub board_downs: u64,
    /// Boards brought (back) up.
    pub board_ups: u64,
    /// Chaos throttle/blackout window-edge events processed (rack
    /// outages count as board downs/ups instead).
    pub chaos_events: u64,
    /// Shards the execution plane was partitioned into.
    pub shards: u32,
    /// Typed messages delivered to shards (placements, migrations,
    /// redistributions).
    pub messages: u64,
    /// Barrier advances of the execution plane.
    pub advances: u64,
    /// Advances that fanned shards out across OS threads.
    pub par_advances: u64,
}

/// Board-architecture lookup tables, computed once per run so the
/// per-arrival estimate work is O(architectures), not O(boards).
struct ArchMap {
    /// Distinct architecture keys, first-appearance order.
    keys: Vec<&'static str>,
    /// Architecture index of every board.
    of_board: Vec<usize>,
    /// A representative board index per architecture.
    representative: Vec<usize>,
}

impl ArchMap {
    fn new(cluster: &crate::cluster::ClusterSpec) -> Self {
        let keys = cluster.arch_keys();
        let of_board = (0..cluster.len())
            .map(|b| {
                keys.iter()
                    .position(|&k| k == cluster.arch_key(b))
                    .expect("every board's arch is in arch_keys")
            })
            .collect();
        let representative = keys
            .iter()
            .map(|k| cluster.representative_board_idx(k))
            .collect();
        ArchMap {
            keys,
            of_board,
            representative,
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Per-run scratch for estimate construction, refilled in place per
/// arrival so estimating allocates nothing however many jobs stream
/// through. The per-architecture arrays are sized to the cluster's
/// distinct architecture count — any number of architectures works.
struct EstScratch {
    /// Per-board estimates handed to dispatchers (feedback-corrected).
    est: JobEstimates,
    /// Uncorrected per-architecture profiled walls — what policy
    /// resolution and the admission guard reason about.
    base_s: Vec<f64>,
    /// Corrected per-architecture service estimates.
    service_s: Vec<f64>,
    /// Per-architecture energy estimates.
    energy_j: Vec<f64>,
    /// Per-architecture warm-cache bits.
    warm: Vec<bool>,
}

impl EstScratch {
    fn new(n_boards: usize, n_arches: usize) -> Self {
        EstScratch {
            est: JobEstimates::zeroed(n_boards),
            base_s: vec![0.0; n_arches],
            service_s: vec![0.0; n_arches],
            energy_j: vec![0.0; n_arches],
            warm: vec![false; n_arches],
        }
    }
}

impl<'a> FleetSim<'a> {
    /// The batch event loop: a [`ResidentKernel`] driven off a
    /// [`SliceCursor`] over the materialised job stream with outcome
    /// retention on — byte-for-byte the semantics every earlier PR
    /// pinned. Public API is [`FleetSim::run`] /
    /// [`FleetSim::run_traced`]; the streaming entry point is
    /// [`FleetSim::resident`]. `telemetry` is the flight recorder:
    /// every hook reads kernel state and writes only recorder state, so
    /// the returned outcome is byte-identical whatever the trace level
    /// (including [`crate::telemetry::TraceLevel::Off`], where each
    /// hook is one predicted-false branch).
    pub(crate) fn run_kernel(
        &self,
        jobs: &[JobSpec],
        dispatcher: &mut dyn Dispatcher,
        cache: &mut PolicyCache,
        scenario: &Scenario,
        telemetry: &mut FlightRecorder,
    ) -> FleetOutcome {
        let mut cursor = SliceCursor::new(jobs);
        let mut kernel = ResidentKernel::new(
            self,
            &mut cursor,
            dispatcher,
            cache,
            scenario,
            telemetry,
            true,
        );
        kernel.run();
        kernel.finish()
    }

    /// A resident (streaming) kernel over this simulator: jobs are
    /// pulled lazily from `cursor` instead of a materialised slice,
    /// and with `retain = false` completed outcomes are folded into
    /// streaming aggregates at the barrier merge and discarded —
    /// O(boards) memory however many jobs flow through. The caller
    /// owns the loop: [`ResidentKernel::step`] advances one control
    /// event at a time (so a service can checkpoint between events),
    /// [`ResidentKernel::run`] drives it to completion and
    /// [`ResidentKernel::finish`] assembles the [`FleetOutcome`]. With
    /// `retain = true` and a [`SliceCursor`] this is exactly
    /// [`FleetSim::run`], byte-for-byte.
    pub fn resident<'r>(
        &'r self,
        cursor: &'r mut dyn ArrivalCursor,
        dispatcher: &'r mut dyn Dispatcher,
        cache: &'r mut PolicyCache,
        scenario: &'r Scenario,
        telemetry: &'r mut FlightRecorder,
        retain: bool,
    ) -> ResidentKernel<'a, 'r> {
        ResidentKernel::new(self, cursor, dispatcher, cache, scenario, telemetry, retain)
    }
}

/// The fleet kernel as a long-lived value instead of one closed loop:
/// the same control plane, execution plane and determinism contract as
/// the batch path (which is now a thin wrapper over this), but
/// arrivals stream in through an [`ArrivalCursor`], each
/// [`ResidentKernel::step`] processes exactly one control event, and
/// the caller decides when to pause, checkpoint or finish. With
/// retention off, completed outcomes are folded into streaming
/// quantile digests and counters at the barrier merge and discarded,
/// so a run's footprint is O(boards + architectures), independent of
/// how many jobs flow through.
pub struct ResidentKernel<'a, 'r> {
    sim: &'r FleetSim<'a>,
    cursor: &'r mut dyn ArrivalCursor,
    dispatcher: &'r mut dyn Dispatcher,
    cache: &'r mut PolicyCache,
    scenario: &'r Scenario,
    telemetry: &'r mut FlightRecorder,
    chaos: CompiledChaos,
    chaos_stats: ChaosStats,
    modules: BTreeMap<&'static str, Module>,
    machine_exec: MachineExecutor,
    session: Option<ReplaySession<'r>>,
    progs: ProgramSet,
    arches: ArchMap,
    profiles: ProfileTable,
    state: ClusterState<'a>,
    shards: ShardSet,
    workers: usize,
    stats: KernelStats,
    feedback: Option<ServiceFeedback>,
    train_time_s: f64,
    train_energy_j: f64,
    guard_bypasses: u64,
    outcomes: Vec<JobOutcome>,
    dropped: Vec<DroppedJob>,
    scratch: EstScratch,
    ctrl: EventQueue,
    open: usize,
    pending: Option<JobSpec>,
    retain: bool,
    stream: Option<StreamAgg>,
    wall_run: Option<std::time::Instant>,
    finished: bool,
}

/// What one [`ResidentKernel::step`] decided to do: pop a queued
/// control event, or admit the job the cursor has buffered.
enum ControlAction {
    Ctl(EventKind),
    Arrive(JobSpec),
}

impl<'a, 'r> ResidentKernel<'a, 'r> {
    /// Validates the scenario against `sim`'s cluster, compiles the
    /// chaos schedule, builds every per-run table and seeds the
    /// control queue — everything the old batch loop did before its
    /// first event. Executes nothing: drive with
    /// [`ResidentKernel::step`] or [`ResidentKernel::run`].
    pub(crate) fn new(
        sim: &'r FleetSim<'a>,
        cursor: &'r mut dyn ArrivalCursor,
        dispatcher: &'r mut dyn Dispatcher,
        cache: &'r mut PolicyCache,
        scenario: &'r Scenario,
        telemetry: &'r mut FlightRecorder,
        retain: bool,
    ) -> Self {
        let n_boards = sim.cluster.len();
        assert!(
            !scenario.preemption
                || (scenario.dispatch == DispatchMode::Online && scenario.monitor_interval_s > 0.0),
            "preemption requires online dispatch and a positive monitor interval"
        );
        for ev in &scenario.churn {
            assert!(
                ev.board < n_boards,
                "churn event names board {} of {n_boards}",
                ev.board
            );
            assert!(ev.time_s >= 0.0, "churn events cannot predate the run");
        }

        // Compile the chaos schedule (validating clause shapes), then
        // reject inconsistent liveness sequences outright: replaying
        // the merged churn + rack-outage events in their exact pop
        // order (time, then push order — churn before chaos), a
        // BoardUp for a board that is already up, or a BoardDown for
        // one already down, is a schedule bug, not a scenario. It used
        // to be silently absorbed (`up = true` is idempotent), which
        // let e.g. a mistyped board index skew every later decision
        // without a trace.
        let chaos = scenario.chaos.compile(n_boards);
        let chaos_stats = chaos.stats.clone();
        {
            let mut seq: Vec<(f64, bool, usize)> = scenario
                .churn
                .iter()
                .map(|ev| (ev.time_s, ev.up, ev.board))
                .collect();
            for (t, kind) in &chaos.events {
                match kind {
                    EventKind::BoardDown(b) => seq.push((*t, false, *b as usize)),
                    EventKind::BoardUp(b) => seq.push((*t, true, *b as usize)),
                    _ => {}
                }
            }
            // Stable sort: equal timestamps keep push order, exactly
            // as the control queue will pop them.
            seq.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut up = vec![true; n_boards];
            for (t, to_up, b) in seq {
                if to_up {
                    assert!(
                        !up[b],
                        "inconsistent churn/chaos schedule: board {b} is brought up at {t} s \
                         without a preceding BoardDown"
                    );
                } else {
                    assert!(
                        up[b],
                        "inconsistent churn/chaos schedule: board {b} is taken down at {t} s \
                         while already down"
                    );
                }
                up[b] = to_up;
            }
        }

        // Source modules, one per distinct workload the cursor can
        // yield (for generators, the whole pool).
        let mut modules: BTreeMap<&'static str, Module> = BTreeMap::new();
        for w in cursor.workloads() {
            modules
                .entry(w.name)
                .or_insert_with(|| (w.build)(sim.params.size));
        }

        // Calibration-then-replay: record every (workload, architecture)
        // trace set up front, in deterministic order (earlier runs of
        // this simulator are cache hits).
        if let Some(replay) = &sim.replay_exec {
            for key in sim.cluster.arch_keys() {
                let board = sim.cluster.representative_board(key);
                for (name, module) in &modules {
                    replay.calibrate(name, module, board);
                }
            }
        }

        // The execution backend every profile and job run goes through.
        // On the replay backend this is a calibration-cache *session*
        // snapshotted after the pre-pass above: one rwlock acquisition
        // for the whole run, answered lock-free per job thereafter.
        let machine_exec = MachineExecutor {
            params: sim.params.machine,
        };
        let session = sim.replay_exec.as_ref().map(|r| r.session());

        // Stock binaries compiled up front; static builds are compiled
        // by the control plane at dispatch/migration time. Either way
        // the shards only ever read the memo.
        let mut progs = ProgramSet::default();
        for (name, module) in &modules {
            progs.cold.insert(
                crate::sim::sk(name),
                compile(module).expect("workload compiles"),
            );
        }

        let arches = ArchMap::new(sim.cluster);
        let profiles = ProfileTable::new();
        let mut state = ClusterState::new(sim.cluster, scenario.dispatch);
        // Indexed argmin dispatch: the kernel maintains the index at
        // every board mutation below, so picks stop scanning O(boards).
        state.rebuild_dispatch_index();
        let shards = ShardSet::new(n_boards, sim.params.shards);
        let workers = sim.params.shard_workers.max(1);
        let stats = KernelStats {
            shards: shards.len() as u32,
            ..KernelStats::default()
        };
        let feedback = scenario.feedback.then(ServiceFeedback::default);
        let outcomes: Vec<JobOutcome> = Vec::with_capacity(if retain { cursor.total() } else { 0 });
        // Per-arrival scratch, refilled in place (no per-event allocs).
        let scratch = EstScratch::new(n_boards, arches.len());

        // The control queue: churn first (so a down-at-t beats an
        // arrival at the same t), then the compiled chaos events in
        // clause order, then the first monitor tick. Arrivals are
        // consumed from the (sorted) stream through a cursor, which
        // preserves the same tie order the sequential kernel's seeding
        // produced — pinned: churn < chaos < arrival < tick at equal
        // timestamps (within churn and within chaos, push order).
        let mut ctrl = EventQueue::new();
        for ev in &scenario.churn {
            ctrl.push(
                ev.time_s,
                if ev.up {
                    EventKind::BoardUp(ev.board as u32)
                } else {
                    EventKind::BoardDown(ev.board as u32)
                },
            );
        }
        for &(t, kind) in &chaos.events {
            ctrl.push(t, kind);
        }
        if scenario.monitor_interval_s > 0.0 {
            ctrl.push(scenario.monitor_interval_s, EventKind::MonitorTick);
        }
        // Jobs not yet completed or dropped. The cursor knows its
        // stream length up front even though specs materialise lazily.
        let open = cursor.total();

        // Wall-clock phase profiling (machine time, recorder-gated —
        // the off path never reads the OS clock).
        let wall_run = telemetry.stopwatch();

        ResidentKernel {
            sim,
            cursor,
            dispatcher,
            cache,
            scenario,
            telemetry,
            chaos,
            chaos_stats,
            modules,
            machine_exec,
            session,
            progs,
            arches,
            profiles,
            state,
            shards,
            workers,
            stats,
            feedback,
            train_time_s: 0.0,
            train_energy_j: 0.0,
            guard_bypasses: 0,
            outcomes,
            dropped: Vec::new(),
            scratch,
            ctrl,
            open,
            pending: None,
            retain,
            stream: (!retain).then(StreamAgg::new),
            wall_run,
            finished: false,
        }
    }

    /// Advances the kernel by exactly one control event — an arrival,
    /// a churn/chaos edge or a monitor tick, each preceded by its
    /// barrier merge — or, when no control remains, by the final drain
    /// of every shard's completion chain. Returns `false` once the run
    /// is complete (after which [`ResidentKernel::finish`] assembles
    /// the outcome).
    pub fn step(&mut self) -> bool {
        if self.finished {
            return false;
        }
        let ResidentKernel {
            sim,
            cursor,
            dispatcher,
            cache,
            scenario,
            telemetry,
            chaos,
            chaos_stats,
            modules,
            machine_exec,
            session,
            progs,
            arches,
            profiles,
            state,
            shards,
            workers,
            stats,
            feedback,
            train_time_s,
            train_energy_j,
            guard_bypasses,
            outcomes,
            dropped,
            scratch,
            ctrl,
            open,
            pending,
            retain,
            stream,
            finished,
            ..
        } = self;
        let n_boards = sim.cluster.len();
        // On the replay backend every profile and job run goes through
        // the calibration-cache session snapshotted in `new` — one
        // rwlock acquisition for the whole run, lock-free per job.
        let exec: &dyn Executor = match session.as_ref() {
            Some(s) => s,
            None => &*machine_exec,
        };

        // The next control event: the earlier of the arrival cursor
        // and the control queue, ties resolved churn < arrival < tick
        // (the order the sequential kernel's seeding produced). The
        // cursor is consuming, so the peeked job waits in a one-slot
        // buffer until the seam decides to admit it.
        if pending.is_none() {
            *pending = cursor.next_job();
        }
        let arrival_t = pending.as_ref().map(|j| j.arrival_s);
        let queued = ctrl.peek().copied();
        let take_ctrl = match (arrival_t, &queued) {
            (None, None) => false,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(ta), Some(e)) => e.time_s < ta || (e.time_s == ta && e.kind.is_state_change()),
        };
        let ctl = if take_ctrl {
            ctrl.pop().map(|e| (e.time_s, ControlAction::Ctl(e.kind)))
        } else if let Some(job) = pending.take() {
            Some((job.arrival_s, ControlAction::Arrive(job)))
        } else {
            None
        };

        let Some((time_s, act)) = ctl else {
            // No control left: drain every shard's completion chain.
            let from_s = state.now_s;
            let wall = telemetry.stopwatch();
            let delta = shards.advance_all(
                &mut state.boards,
                f64::INFINITY,
                *workers,
                &AdvanceCtx {
                    exec,
                    progs: &*progs,
                    modules: &*modules,
                    specs: &sim.cluster.boards,
                    collect_observations: feedback.is_some(),
                },
            );
            telemetry.lap_advance(wall);
            let parallel = shards.last_parallel;
            let wall = telemetry.stopwatch();
            fold_delta(
                delta,
                &mut *state,
                &mut *stats,
                &mut *open,
                &mut *outcomes,
                &mut *feedback,
                &mut **telemetry,
                from_s,
                f64::INFINITY,
                parallel,
                *retain,
                &mut *stream,
            );
            telemetry.lap_merge(wall);
            *finished = true;
            return false;
        };

        // Barrier: every completion strictly before this control
        // event is folded in before the decision reads any state.
        let from_s = state.now_s;
        let wall = telemetry.stopwatch();
        let delta = shards.advance_all(
            &mut state.boards,
            time_s,
            *workers,
            &AdvanceCtx {
                exec,
                progs: &*progs,
                modules: &*modules,
                specs: &sim.cluster.boards,
                collect_observations: feedback.is_some(),
            },
        );
        telemetry.lap_advance(wall);
        let parallel = shards.last_parallel;
        let wall = telemetry.stopwatch();
        fold_delta(
            delta,
            &mut *state,
            &mut *stats,
            &mut *open,
            &mut *outcomes,
            &mut *feedback,
            &mut **telemetry,
            from_s,
            time_s,
            parallel,
            *retain,
            &mut *stream,
        );
        telemetry.lap_merge(wall);
        debug_assert!(
            time_s >= state.now_s - 1e-9,
            "virtual clock ran backwards: {} -> {}",
            state.now_s,
            time_s
        );
        state.advance_now(time_s);
        stats.events += 1;

        let kind = match act {
            ControlAction::Arrive(job) => {
                stats.arrivals += 1;
                if !state.any_placeable() {
                    // Whole fleet down — or every up board under a
                    // dispatch blackout. Both route through the
                    // existing no-board-up drop path; the chaos
                    // accounting distinguishes them.
                    if state.any_up() {
                        chaos_stats.blackout_drops += 1;
                    }
                    dropped.push(DroppedJob {
                        id: job.id,
                        reason: DropReason::NoBoardUp,
                    });
                    stats.dropped += 1;
                    stats.dropped_no_board += 1;
                    *open -= 1;
                    telemetry.on_drop(time_s, job.id, DropReason::NoBoardUp.name());
                    return true;
                }
                let module = &modules[job.workload.name];
                let slo_s = sim.estimates_into(
                    exec,
                    &mut *profiles,
                    &**cache,
                    scenario.policy,
                    &job,
                    module,
                    &*arches,
                    feedback.as_ref(),
                    &mut *scratch,
                );
                // Mis-profiled taxa: corrupt what the dispatcher
                // and admission see (never the SLO — deadlines are
                // contracts, not estimates).
                let mf = chaos.misprofile_factor(job.class(), time_s, Some(&mut *chaos_stats));
                if mf != 1.0 {
                    for s in &mut scratch.est.service_s {
                        *s *= mf;
                    }
                }
                let b = dispatcher.pick(&*state, &job, &scratch.est);
                assert!(b < n_boards, "dispatcher picked board {b} of {n_boards}");
                assert!(
                    state.placeable(b),
                    "dispatcher picked down or blacked-out board {b}"
                );

                // Policy resolution (training on miss/staleness) and
                // admission latency guard.
                let (schedule, profiled_s) = sim.resolve_with_training(
                    exec,
                    &mut *profiles,
                    &mut **cache,
                    scenario.policy,
                    &job,
                    module,
                    b,
                    scratch.base_s[arches.of_board[b]],
                    &mut *train_time_s,
                    &mut *train_energy_j,
                    &mut *guard_bypasses,
                );
                ensure_static_build(&mut *progs, module, &job, &schedule, &*arches, b);
                // The corrupted profiled estimate is what the job
                // is admitted with — and what the feedback layer
                // later compares observed service against, which
                // is exactly how the EWMA learns the 1/mf repair.
                let profiled_s = profiled_s * mf;
                let svc_est = corrected(
                    profiled_s,
                    feedback.as_ref(),
                    &job,
                    arches.keys[arches.of_board[b]],
                );

                // Oracle accumulator: batch stage-1 semantics.
                let acc = &mut state.boards[b].oracle_busy_until_s;
                *acc = acc.max(job.arrival_s) + svc_est;
                state.boards[b].dispatched += 1;

                let qj = QueuedJob {
                    job,
                    slo_s,
                    schedule,
                    sched_arch: sim.cluster.arch_key(b),
                    est_service_s: svc_est,
                    profiled_s,
                    penalty_s: 0.0,
                    migrations: 0,
                    redispatches: 0,
                };
                shards.deliver(
                    &mut state.boards,
                    ShardMsg::Enqueue { board: b, job: qj },
                    state.now_s,
                    &AdvanceCtx {
                        exec,
                        progs: &*progs,
                        modules: &*modules,
                        specs: &sim.cluster.boards,
                        collect_observations: feedback.is_some(),
                    },
                );
                state.refresh_dispatch_index(b);
                telemetry.on_dispatch(time_s, job.id, job.workload.name, b, svc_est);
                return true;
            }
            ControlAction::Ctl(kind) => kind,
        };

        match kind {
            EventKind::MonitorTick => {
                stats.ticks += 1;
                if scenario.preemption {
                    let migrated_before = stats.migrations;
                    sim.preempt_scan(
                        exec,
                        &mut *profiles,
                        &mut **cache,
                        *scenario,
                        &mut *state,
                        &mut *shards,
                        &mut *progs,
                        &*modules,
                        &*arches,
                        feedback.as_ref(),
                        &*chaos,
                        &mut *stats,
                        &mut *guard_bypasses,
                    );
                    telemetry.on_preempt_scan(time_s, stats.migrations - migrated_before);
                }
                // Sample the fleet's gauges for the recorder. Gated
                // on the level so the gauge walk costs nothing when
                // telemetry is off; reads state only, so it cannot
                // perturb the run either way.
                if telemetry.wants_ticks() {
                    let nb = state.boards.len();
                    let mut mean_util = 0.0;
                    let mut queue_depth = 0u64;
                    let mut backlog_s = 0.0;
                    let mut boards_up = 0u32;
                    let mut boards_placeable = 0u32;
                    let mut throttled = 0u32;
                    let mut blacked_out = 0u32;
                    for b in 0..nb {
                        mean_util += state.utilisation(b);
                        queue_depth += state.queue_depth(b) as u64;
                        backlog_s += state.backlog_s(b);
                        if state.up(b) {
                            boards_up += 1;
                        }
                        if state.placeable(b) {
                            boards_placeable += 1;
                        }
                        if !state.boards[b].throttles.is_empty() {
                            throttled += 1;
                        }
                        if state.boards[b].blackouts > 0 {
                            blacked_out += 1;
                        }
                    }
                    let (p50_s, p95_s, p99_s) = telemetry.latency_so_far();
                    let (fb_err, fb_samples, fb_corr) = match &feedback {
                        Some(fb) => (
                            fb.stats.mean_abs_rel_err(),
                            fb.stats.samples,
                            fb.mean_correction(),
                        ),
                        None => (0.0, 0, 1.0),
                    };
                    telemetry.on_tick(WindowSample {
                        t_s: time_s,
                        completions: telemetry.completions(),
                        p50_s,
                        p95_s,
                        p99_s,
                        slo_miss_rate: telemetry.slo_miss_rate(),
                        mean_util: mean_util / nb as f64,
                        queue_depth,
                        backlog_s,
                        boards_up,
                        boards_placeable,
                        throttled,
                        blacked_out,
                        feedback_mean_abs_rel_err: fb_err,
                        feedback_samples: fb_samples,
                        feedback_mean_correction: fb_corr,
                    });
                }
                if *open > 0 {
                    ctrl.push(
                        state.now_s + scenario.monitor_interval_s,
                        EventKind::MonitorTick,
                    );
                }
            }

            EventKind::BoardDown(b) => {
                stats.board_downs += 1;
                let b = b as usize;
                telemetry.on_churn(time_s, b, false);
                state.set_up(b, false);
                // The in-flight job drains; queued work is
                // redistributed (or dropped when nowhere is up or
                // the redispatch cap is exhausted).
                let orphans = state.boards[b].take_queued();
                for qj in orphans {
                    if !state.any_placeable() {
                        if state.any_up() {
                            chaos_stats.blackout_drops += 1;
                        }
                        dropped.push(DroppedJob {
                            id: qj.job.id,
                            reason: DropReason::NoBoardUp,
                        });
                        stats.dropped += 1;
                        stats.dropped_no_board += 1;
                        *open -= 1;
                        telemetry.on_drop(time_s, qj.job.id, DropReason::NoBoardUp.name());
                        continue;
                    }
                    if qj.redispatches >= scenario.max_redispatches {
                        dropped.push(DroppedJob {
                            id: qj.job.id,
                            reason: DropReason::MigrationCap,
                        });
                        stats.dropped += 1;
                        stats.dropped_migration_cap += 1;
                        *open -= 1;
                        telemetry.on_drop(time_s, qj.job.id, DropReason::MigrationCap.name());
                        continue;
                    }
                    stats.redistributions += 1;
                    sim.redispatch(
                        exec,
                        &mut *profiles,
                        &mut **cache,
                        *scenario,
                        &mut **dispatcher,
                        &mut *state,
                        &mut *shards,
                        &mut *progs,
                        &*modules,
                        &*arches,
                        feedback.as_ref(),
                        &*chaos,
                        qj,
                        &mut *guard_bypasses,
                        &mut *scratch,
                        &mut *chaos_stats,
                    );
                }
            }

            EventKind::BoardUp(b) => {
                stats.board_ups += 1;
                telemetry.on_churn(time_s, b as usize, true);
                state.set_up(b as usize, true);
            }

            EventKind::ThrottleStart { board, clause } => {
                stats.chaos_events += 1;
                chaos_stats.clauses[clause as usize].events += 1;
                telemetry.on_chaos(
                    time_s,
                    "throttle start",
                    &chaos_stats.clauses[clause as usize].label,
                    board as usize,
                );
                let bs = &mut state.boards[board as usize];
                bs.throttles.push((clause, chaos.factors[clause as usize]));
                bs.recompute_slowdown();
                // Throttle windows apply whether or not the board
                // is up — a board going down mid-throttle comes
                // back at whatever speed its open windows dictate.
                chaos_stats.max_slowdown = chaos_stats.max_slowdown.max(bs.slowdown);
            }

            EventKind::ThrottleEnd { board, clause } => {
                stats.chaos_events += 1;
                chaos_stats.clauses[clause as usize].events += 1;
                telemetry.on_chaos(
                    time_s,
                    "throttle end",
                    &chaos_stats.clauses[clause as usize].label,
                    board as usize,
                );
                let bs = &mut state.boards[board as usize];
                bs.throttles.retain(|&(c, _)| c != clause);
                bs.recompute_slowdown();
            }

            EventKind::BlackoutStart { board, clause } => {
                stats.chaos_events += 1;
                chaos_stats.clauses[clause as usize].events += 1;
                telemetry.on_chaos(
                    time_s,
                    "blackout start",
                    &chaos_stats.clauses[clause as usize].label,
                    board as usize,
                );
                state.add_blackout(board as usize);
            }

            EventKind::BlackoutEnd { board, clause } => {
                stats.chaos_events += 1;
                chaos_stats.clauses[clause as usize].events += 1;
                telemetry.on_chaos(
                    time_s,
                    "blackout end",
                    &chaos_stats.clauses[clause as usize].label,
                    board as usize,
                );
                state.remove_blackout(board as usize);
            }

            EventKind::Arrival(_) => {
                unreachable!("arrivals come from the cursor, not the control queue")
            }

            EventKind::Completion { .. } => {
                unreachable!("completions live on shard queues, not the control queue")
            }
        }
        true
    }

    /// Drives [`ResidentKernel::step`] until the run completes.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Has the final drain run (is the kernel ready to
    /// [`ResidentKernel::finish`])?
    pub fn done(&self) -> bool {
        self.finished
    }

    /// Jobs the arrival cursor has yielded so far (including one
    /// possibly buffered, not-yet-admitted peek).
    pub fn position(&self) -> usize {
        self.cursor.position()
    }

    /// Jobs completed so far.
    pub fn completions(&self) -> u64 {
        self.stats.completions
    }

    /// Jobs neither completed nor dropped yet (counts arrivals the
    /// cursor has not yielded yet).
    pub fn open(&self) -> usize {
        self.open
    }

    /// The virtual clock, seconds.
    pub fn now_s(&self) -> f64 {
        self.state.now_s
    }

    /// Consumes the drained kernel: exit invariants, final sorts and
    /// [`FleetOutcome`] assembly. Metrics come from the retained
    /// outcomes when retention is on, from the streaming aggregates
    /// otherwise (exact counters and sums, digest percentiles).
    pub fn finish(mut self) -> FleetOutcome {
        assert!(
            self.finished,
            "finish() called before the kernel drained; step() to completion first"
        );
        self.telemetry.lap_total(self.wall_run);
        self.stats.messages = self.shards.messages;
        self.stats.advances = self.shards.advances;
        self.stats.par_advances = self.shards.par_advances;
        assert_eq!(self.open, 0, "kernel exited with open jobs");
        assert_eq!(
            self.stats.arrivals,
            self.stats.completions + self.stats.dropped,
            "event accounting out of balance: {:?}",
            self.stats
        );
        assert_eq!(
            self.stats.dropped,
            self.stats.dropped_no_board + self.stats.dropped_migration_cap,
            "per-reason drop accounting out of balance: {:?}",
            self.stats
        );
        debug_assert!(self
            .state
            .boards
            .iter()
            .all(|s| s.queue_is_empty() && s.in_flight.is_none()));

        self.outcomes.sort_by_key(|o| o.id);
        self.dropped.sort_by_key(|d| d.id);
        self.chaos_stats.throttled_starts =
            self.state.boards.iter().map(|s| s.throttled_starts).sum();
        let mut metrics = match &self.stream {
            Some(agg) => agg.metrics(
                self.state.boards.iter().map(|s| s.busy_s),
                self.train_energy_j,
            ),
            None => FleetMetrics::from_outcomes(
                &self.outcomes,
                self.state.boards.iter().map(|s| s.busy_s),
                self.train_energy_j,
            ),
        };
        if let Some(fb) = &self.feedback {
            metrics.feedback = fb.stats;
        }
        FleetOutcome {
            metrics,
            outcomes: self.outcomes,
            cache: self.cache.stats,
            guard_bypasses: self.guard_bypasses,
            train_time_s: self.train_time_s,
            train_energy_j: self.train_energy_j,
            backend: self.sim.params.backend.name(),
            calibrations: self
                .sim
                .replay_exec
                .as_ref()
                .map(|r| r.stats().calibrations)
                .unwrap_or(0),
            dispatch: self.scenario.dispatch.name(),
            dropped: self.dropped,
            kernel: self.stats,
            chaos: self.chaos_stats,
            stream: self.stream.as_ref().map(StreamAgg::summary),
        }
    }
}

/// Kernel event counters, every field in declaration order.
fn enc_kernel_stats(enc: &mut Enc, s: &KernelStats) {
    enc.u64(s.events);
    enc.u64(s.arrivals);
    enc.u64(s.completions);
    enc.u64(s.dropped);
    enc.u64(s.dropped_no_board);
    enc.u64(s.dropped_migration_cap);
    enc.u64(s.migrations);
    enc.u64(s.redistributions);
    enc.u64(s.ticks);
    enc.u64(s.board_downs);
    enc.u64(s.board_ups);
    enc.u64(s.chaos_events);
    enc.u32(s.shards);
    enc.u64(s.messages);
    enc.u64(s.advances);
    enc.u64(s.par_advances);
}

fn dec_kernel_stats(dec: &mut Dec<'_>) -> Result<KernelStats, CheckpointError> {
    let stats = KernelStats {
        events: dec.u64()?,
        arrivals: dec.u64()?,
        completions: dec.u64()?,
        dropped: dec.u64()?,
        dropped_no_board: dec.u64()?,
        dropped_migration_cap: dec.u64()?,
        migrations: dec.u64()?,
        redistributions: dec.u64()?,
        ticks: dec.u64()?,
        board_downs: dec.u64()?,
        board_ups: dec.u64()?,
        chaos_events: dec.u64()?,
        shards: dec.u32()?,
        messages: dec.u64()?,
        advances: dec.u64()?,
        par_advances: dec.u64()?,
    };
    if stats.dropped != stats.dropped_no_board + stats.dropped_migration_cap {
        return Err(CheckpointError::Corrupt(
            "per-reason drop counters do not sum to the drop total",
        ));
    }
    Ok(stats)
}

/// Chaos accounting counters. Clause labels are *not* serialised — the
/// resuming kernel recompiles the same schedule and keeps its own
/// labels — so a checkpoint cannot inject arbitrary strings into
/// reports.
fn enc_chaos_stats(enc: &mut Enc, s: &ChaosStats) {
    enc.usize(s.clauses.len());
    for c in &s.clauses {
        enc.u64(c.events);
        enc.u64(c.affected_jobs);
    }
    enc.u64(s.throttled_starts);
    enc.f64(s.max_slowdown);
    enc.u64(s.misprofiled);
    enc.u64(s.blackout_drops);
}

/// `fresh` is the compiled schedule's zeroed accounting (labels filled
/// in): the clause count must match it exactly.
fn dec_chaos_stats(dec: &mut Dec<'_>, fresh: &ChaosStats) -> Result<ChaosStats, CheckpointError> {
    let n = dec.count(16)?;
    if n != fresh.clauses.len() {
        return Err(CheckpointError::Corrupt(
            "chaos clause count does not match the scenario",
        ));
    }
    let mut out = fresh.clone();
    for c in out.clauses.iter_mut() {
        c.events = dec.u64()?;
        c.affected_jobs = dec.u64()?;
    }
    out.throttled_starts = dec.u64()?;
    out.max_slowdown = dec.f64()?;
    if !out.max_slowdown.is_finite() || out.max_slowdown < 0.0 {
        return Err(CheckpointError::Corrupt(
            "chaos max_slowdown is not finite and non-negative",
        ));
    }
    out.misprofiled = dec.u64()?;
    out.blackout_drops = dec.u64()?;
    Ok(out)
}

impl<'a, 'r> ResidentKernel<'a, 'r> {
    /// Fingerprint of everything a checkpoint's bytes implicitly assume
    /// about the kernel resuming them: fleet size, stream length,
    /// scenario label and retention mode. Deliberately *excludes* the
    /// shard count — the determinism contract makes a checkpoint taken
    /// under K shards valid to resume under any K'.
    fn config_fp(&self) -> u64 {
        let mut enc = Enc::new();
        enc.usize(self.state.len());
        enc.usize(self.cursor.total());
        enc.str(&self.scenario.label());
        enc.bool(self.retain);
        checkpoint::fnv1a(&enc.finish())
    }

    /// Serialises the complete mid-run state to a versioned,
    /// checksummed byte buffer: cursor position, virtual clock, control
    /// queue, per-board queues and in-flight jobs, every counter, the
    /// policy cache, feedback EWMAs, chaos accounting and the streaming
    /// aggregates (or retained outcomes). A kernel built over the same
    /// configuration that [`ResidentKernel::restore`]s these bytes
    /// continues bit-identically to the uninterrupted run — under any
    /// shard count.
    ///
    /// What is *not* serialised is everything rebuildable: profile and
    /// calibration memos, compiled programs (warm static builds are
    /// recompiled on restore for every queued job that needs one), the
    /// dispatch index, and telemetry (the flight recorder's
    /// non-perturbation contract means it never affects results).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        checkpoint::header(&mut enc, self.config_fp());
        self.cursor.save().encode(&mut enc);
        match &self.pending {
            None => enc.bool(false),
            Some(j) => {
                enc.bool(true);
                checkpoint::enc_job_spec(&mut enc, j);
            }
        }
        enc.f64(self.state.now_s);
        self.ctrl.encode(&mut enc);
        enc_kernel_stats(&mut enc, &self.stats);
        for b in &self.state.boards {
            b.encode(&mut enc);
        }
        enc.u64(self.shards.advances);
        enc.u64(self.shards.par_advances);
        enc.u64(self.shards.messages);
        enc_chaos_stats(&mut enc, &self.chaos_stats);
        match &self.feedback {
            None => enc.bool(false),
            Some(fb) => {
                enc.bool(true);
                fb.encode(&mut enc);
            }
        }
        self.cache.encode(&mut enc);
        enc.f64(self.train_time_s);
        enc.f64(self.train_energy_j);
        enc.u64(self.guard_bypasses);
        enc.usize(self.open);
        if self.retain {
            enc.usize(self.outcomes.len());
            for o in &self.outcomes {
                checkpoint::enc_outcome(&mut enc, o);
            }
        }
        // The dropped list is small (drops are exceptional) and
        // reported in both modes, so it is serialised unconditionally.
        enc.usize(self.dropped.len());
        for d in &self.dropped {
            checkpoint::enc_dropped(&mut enc, d);
        }
        if let Some(s) = &self.stream {
            s.encode(&mut enc);
        }
        checkpoint::seal(enc.finish())
    }

    /// Restores a [`ResidentKernel::checkpoint`] into this kernel,
    /// which must have been built over the same configuration (cluster,
    /// cursor, scenario, retention — fingerprinted in the header; the
    /// shard count may differ freely). Every section is decoded and
    /// validated into temporaries before anything is applied, so a
    /// corrupted, truncated or mismatched checkpoint returns a
    /// [`CheckpointError`] and leaves the kernel exactly as it was.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let payload = checkpoint::unseal(bytes)?;
        let mut dec = Dec::new(payload);
        checkpoint::check_header(&mut dec, self.config_fp())?;
        let n_boards = self.state.len();
        let n_clauses = self.chaos.factors.len();

        let cursor_state = CursorState::decode(&mut dec)?;
        let pending = if dec.bool()? {
            Some(checkpoint::dec_job_spec(&mut dec)?)
        } else {
            None
        };
        let now_s = dec.f64()?;
        if !now_s.is_finite() || now_s < 0.0 {
            return Err(CheckpointError::Corrupt(
                "virtual clock is not finite and non-negative",
            ));
        }
        let ctrl = EventQueue::decode(&mut dec, n_boards, n_clauses)?;
        let mut stats = dec_kernel_stats(&mut dec)?;
        let mut boards = Vec::with_capacity(n_boards);
        for _ in 0..n_boards {
            boards.push(BoardState::decode(
                &mut dec,
                &self.arches.keys,
                n_boards,
                n_clauses,
            )?);
        }
        // Queued jobs must name workloads this kernel compiled modules
        // for (the registry check in decode is necessary, not
        // sufficient: the cursor's pool can be narrower).
        for board in &boards {
            for q in board.queued() {
                if !self.modules.contains_key(q.job.workload.name) {
                    return Err(CheckpointError::UnknownWorkload(
                        q.job.workload.name.to_string(),
                    ));
                }
            }
        }
        if let Some(j) = &pending {
            if !self.modules.contains_key(j.workload.name) {
                return Err(CheckpointError::UnknownWorkload(
                    j.workload.name.to_string(),
                ));
            }
        }
        let advances = dec.u64()?;
        let par_advances = dec.u64()?;
        let messages = dec.u64()?;
        let chaos_stats = dec_chaos_stats(&mut dec, &self.chaos.stats)?;
        let feedback = if dec.bool()? {
            Some(ServiceFeedback::decode(&mut dec, &self.arches.keys)?)
        } else {
            None
        };
        if feedback.is_some() != self.scenario.feedback {
            return Err(CheckpointError::Corrupt(
                "feedback section does not match the scenario",
            ));
        }
        let cache = PolicyCache::decode(&mut dec, &self.arches.keys)?;
        let train_time_s = dec.f64()?;
        let train_energy_j = dec.f64()?;
        let guard_bypasses = dec.u64()?;
        let open = dec.usize()?;
        if self.cursor.total() as u64 != stats.completions + stats.dropped + open as u64 {
            return Err(CheckpointError::Corrupt(
                "open-job count inconsistent with completion/drop counters",
            ));
        }
        let outcomes = if self.retain {
            let n = dec.count(4)?;
            let mut outcomes = Vec::with_capacity(n);
            for _ in 0..n {
                outcomes.push(checkpoint::dec_outcome(&mut dec, n_boards)?);
            }
            outcomes
        } else {
            Vec::new()
        };
        let n = dec.count(5)?;
        let mut dropped = Vec::with_capacity(n);
        for _ in 0..n {
            dropped.push(checkpoint::dec_dropped(&mut dec)?);
        }
        let stream = if self.retain {
            None
        } else {
            Some(StreamAgg::decode(&mut dec)?)
        };
        dec.finish()?;

        // The cursor validates before it applies, so it is safe as the
        // first mutation: a rejected position leaves everything
        // untouched.
        self.cursor.load(&cursor_state)?;

        // ---- apply (infallible from here) ---------------------------
        self.pending = pending;
        self.state.now_s = now_s;
        self.state.restore_boards(boards);
        self.ctrl = ctrl;
        // The shard count is this kernel's, not the checkpoint's: the
        // execution plane is reconstructed, with one pending completion
        // per busy board (same-time cross-board completions commute, so
        // this is the only shard state the contract needs).
        stats.shards = self.shards.len() as u32;
        self.stats = stats;
        self.shards = ShardSet::new(n_boards, self.sim.params.shards);
        self.shards.restore_completions(&self.state.boards);
        self.shards
            .restore_counters(advances, par_advances, messages);
        self.chaos_stats = chaos_stats;
        self.feedback = feedback;
        *self.cache = cache;
        self.train_time_s = train_time_s;
        self.train_energy_j = train_energy_j;
        self.guard_bypasses = guard_bypasses;
        self.open = open;
        self.outcomes = outcomes;
        self.dropped = dropped;
        self.stream = stream;
        self.finished = false;

        // Warm static builds are a pure memo keyed by (workload, arch,
        // policy version): recompile the entries every restored queued
        // job will read when it starts. In-flight jobs carry their
        // precomputed outcome and need no program.
        for b in 0..n_boards {
            for q in self.state.boards[b].queued() {
                let module = &self.modules[q.job.workload.name];
                ensure_static_build(
                    &mut self.progs,
                    module,
                    &q.job,
                    &q.schedule,
                    &self.arches,
                    b,
                );
            }
        }
        Ok(())
    }
}

impl FleetSim<'_> {
    // ---- admission ----------------------------------------------------------

    /// Refill `scratch` with per-board estimates for `job` (and the
    /// uncorrected per-architecture profiled walls); returns the
    /// resolved SLO. Profiled values are computed once per
    /// *architecture* and fanned out to boards, so an arrival costs
    /// O(architectures) profile lookups however many boards the
    /// cluster has. Read-only on the cache (peeks, no accounting).
    #[allow(clippy::too_many_arguments)]
    fn estimates_into(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &PolicyCache,
        policy: PolicyMode,
        job: &JobSpec,
        module: &Module,
        arches: &ArchMap,
        feedback: Option<&ServiceFeedback>,
        scratch: &mut EstScratch,
    ) -> f64 {
        let slo_s = job.slo_tightness * self.best_cold_wall(exec, profiles, &job.workload, module);
        debug_assert_eq!(scratch.base_s.len(), arches.len());
        for a in 0..arches.len() {
            let arch = arches.keys[a];
            let (wall, energy, warm) = self.estimate_on(
                exec,
                profiles,
                cache,
                policy,
                job,
                module,
                arches.representative[a],
            );
            scratch.base_s[a] = wall;
            scratch.service_s[a] = corrected(wall, feedback, job, arch);
            scratch.energy_j[a] = energy;
            scratch.warm[a] = warm;
        }
        for b in 0..arches.of_board.len() {
            let a = arches.of_board[b];
            scratch.est.service_s[b] = scratch.service_s[a];
            scratch.est.energy_j[b] = scratch.energy_j[a];
            scratch.est.warm[b] = scratch.warm[a];
        }
        slo_s
    }

    /// Arrival-path policy resolution: full cache lookup (training on
    /// miss, warm refresh on staleness — asynchronous, off the serving
    /// path, so the triggering job runs its stock binary), then the
    /// admission latency guard. Returns the schedule to run and the
    /// guarded *uncorrected* profiled service estimate on board `b`
    /// (the feedback correction, if any, is applied by the caller).
    #[allow(clippy::too_many_arguments)]
    fn resolve_with_training(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &mut PolicyCache,
        policy: PolicyMode,
        job: &JobSpec,
        module: &Module,
        b: usize,
        cold_est: f64,
        train_time_s: &mut f64,
        train_energy_j: &mut f64,
        guard_bypasses: &mut u64,
    ) -> (Option<(astro_core::schedule::StaticSchedule, u32)>, f64) {
        let schedule = match policy {
            PolicyMode::Cold => None,
            PolicyMode::Warm => {
                let arch = self.cluster.arch_key(b);
                match cache.lookup(job.taxon, arch) {
                    CacheDecision::Hit(s, v) => Some((s, v)),
                    CacheDecision::Stale(snap) => {
                        let (trained, t, e) =
                            self.train(job, b, Some(&snap), self.params.refresh_episodes);
                        *train_time_s += t;
                        *train_energy_j += e;
                        let snapshot = trained.hooks.agent.snapshot();
                        cache.refresh(job.taxon, arch, trained.static_schedule, snapshot);
                        None
                    }
                    CacheDecision::Miss => {
                        let (trained, t, e) = self.train(job, b, None, self.params.train.episodes);
                        *train_time_s += t;
                        *train_energy_j += e;
                        let snapshot = trained.hooks.agent.snapshot();
                        cache.insert(job.taxon, arch, trained.static_schedule, snapshot);
                        None
                    }
                }
            }
        };
        self.apply_guard(
            exec,
            profiles,
            job,
            module,
            b,
            schedule,
            cold_est,
            guard_bypasses,
        )
    }

    /// Admission latency guard: when the schedule's profiled service on
    /// board `b` regresses past the guard factor, the job runs its
    /// stock binary instead.
    #[allow(clippy::too_many_arguments)]
    fn apply_guard(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        job: &JobSpec,
        module: &Module,
        b: usize,
        schedule: Option<(astro_core::schedule::StaticSchedule, u32)>,
        cold_est: f64,
        guard_bypasses: &mut u64,
    ) -> (Option<(astro_core::schedule::StaticSchedule, u32)>, f64) {
        match schedule {
            None => (None, cold_est),
            Some((st, v)) => {
                // The verdict is a pure function of two memoised
                // profiles, so it is memoised per (workload, arch,
                // version) — the bypass counter still ticks per
                // arrival, exactly as the recomputing path did.
                let arch = self.cluster.arch_key(b);
                let key = (crate::sim::sk(job.workload.name), crate::sim::sk(arch), v);
                let (admit, wall) = match profiles.guard.get(&key) {
                    Some(&verdict) => verdict,
                    None => {
                        let (cold_wall, _) = self.profile(
                            exec,
                            profiles,
                            &job.workload,
                            module,
                            b,
                            ProfileTable::COLD,
                            None,
                        );
                        let (warm_wall, _) = self.profile(
                            exec,
                            profiles,
                            &job.workload,
                            module,
                            b,
                            v as u64,
                            Some(st),
                        );
                        let verdict = if warm_wall > cold_wall * self.params.latency_guard {
                            (false, cold_wall)
                        } else {
                            (true, warm_wall)
                        };
                        profiles.guard.insert(key, verdict);
                        verdict
                    }
                };
                if admit {
                    (Some((st, v)), wall)
                } else {
                    *guard_bypasses += 1;
                    (None, wall)
                }
            }
        }
    }

    // ---- migration ----------------------------------------------------------

    /// Re-resolve a migrating job's schedule for the target board
    /// without training (there is no time to train on the migration
    /// path): a fresh cache line for the target architecture applies
    /// (guard permitting), anything else runs the stock binary.
    /// `misprofile` is the chaos estimate-corruption factor active at
    /// migration time (1.0 when none): it scales the profiled estimate
    /// the same way it scaled the arrival-time estimate, so feedback
    /// sees a consistently corrupted signal it can learn to repair.
    #[allow(clippy::too_many_arguments)]
    fn migrate_onto(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &PolicyCache,
        scenario: &Scenario,
        mut qj: QueuedJob,
        target: usize,
        guard_bypasses: &mut u64,
        modules: &BTreeMap<&'static str, Module>,
        feedback: Option<&ServiceFeedback>,
        misprofile: f64,
    ) -> QueuedJob {
        let arch = self.cluster.arch_key(target);
        let module = &modules[qj.job.workload.name];
        let schedule = if scenario.policy == PolicyMode::Warm && qj.sched_arch == arch {
            qj.schedule
        } else if scenario.policy == PolicyMode::Warm && cache.is_warm(qj.job.taxon, arch) {
            let e = cache.peek(qj.job.taxon, arch).expect("warm entry exists");
            Some((e.schedule, e.version))
        } else {
            None
        };
        let (cold_wall, _) = self.profile(
            exec,
            profiles,
            &qj.job.workload,
            module,
            target,
            ProfileTable::COLD,
            None,
        );
        let (schedule, profiled_s) = self.apply_guard(
            exec,
            profiles,
            &qj.job,
            module,
            target,
            schedule,
            cold_wall,
            guard_bypasses,
        );
        qj.schedule = schedule;
        qj.sched_arch = arch;
        let profiled_s = profiled_s * misprofile;
        qj.profiled_s = profiled_s;
        qj.est_service_s = corrected(profiled_s, feedback, &qj.job, arch);
        qj.penalty_s += scenario.migration_cost_s;
        qj.migrations += 1;
        qj
    }

    /// Churn redistribution: place an orphaned queued job through the
    /// dispatcher (over the boards still up), paying the migration cost.
    #[allow(clippy::too_many_arguments)]
    fn redispatch(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &mut PolicyCache,
        scenario: &Scenario,
        dispatcher: &mut dyn Dispatcher,
        state: &mut ClusterState,
        shards: &mut ShardSet,
        progs: &mut ProgramSet,
        modules: &BTreeMap<&'static str, Module>,
        arches: &ArchMap,
        feedback: Option<&ServiceFeedback>,
        chaos: &CompiledChaos,
        qj: QueuedJob,
        guard_bypasses: &mut u64,
        scratch: &mut EstScratch,
        chaos_stats: &mut ChaosStats,
    ) -> usize {
        self.estimates_into(
            exec,
            profiles,
            cache,
            scenario.policy,
            &qj.job,
            &modules[qj.job.workload.name],
            arches,
            feedback,
            scratch,
        );
        // A redispatch is a fresh admission: an active misprofile
        // window corrupts its estimates exactly like an arrival's.
        let mf = chaos.misprofile_factor(qj.job.class(), state.now_s, Some(chaos_stats));
        if mf != 1.0 {
            for s in &mut scratch.est.service_s {
                *s *= mf;
            }
        }
        let b = dispatcher.pick(state, &qj.job, &scratch.est);
        assert!(
            state.placeable(b),
            "dispatcher picked down or blacked-out board {b}"
        );
        let mut qj = self.migrate_onto(
            exec,
            profiles,
            cache,
            scenario,
            qj,
            b,
            guard_bypasses,
            modules,
            feedback,
            mf,
        );
        // Churn redistributions are capped by their own counter —
        // preemptive migrations (max_migrations) do not consume it.
        qj.redispatches += 1;
        let module = &modules[qj.job.workload.name];
        ensure_static_build(progs, module, &qj.job, &qj.schedule, arches, b);
        // Oracle accumulators track redistributed work too (the oracle
        // still books what it re-plans, it just never observes reality).
        let acc = &mut state.boards[b].oracle_busy_until_s;
        *acc = acc.max(state.now_s) + qj.est_total_s();
        state.boards[b].dispatched += 1;
        shards.deliver(
            &mut state.boards,
            ShardMsg::Enqueue { board: b, job: qj },
            state.now_s,
            &AdvanceCtx {
                exec,
                progs,
                modules,
                specs: &self.cluster.boards,
                collect_observations: feedback.is_some(),
            },
        );
        state.refresh_dispatch_index(b);
        b
    }

    /// Preemptive redispatch scan: walk every live board's queue in
    /// order, predict each queued job's finish from observable state,
    /// and migrate predicted SLO-missers to a board predicted to *meet*
    /// the deadline (never a sideways bounce — a migration must turn a
    /// predicted miss into a predicted hit).
    #[allow(clippy::too_many_arguments)]
    fn preempt_scan(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &mut PolicyCache,
        scenario: &Scenario,
        state: &mut ClusterState,
        shards: &mut ShardSet,
        progs: &mut ProgramSet,
        modules: &BTreeMap<&'static str, Module>,
        arches: &ArchMap,
        feedback: Option<&ServiceFeedback>,
        chaos: &CompiledChaos,
        stats: &mut KernelStats,
        guard_bypasses: &mut u64,
    ) {
        let n_boards = self.cluster.len();
        for b in 0..n_boards {
            if !state.up(b) || state.boards[b].queue_is_empty() {
                continue;
            }
            let mut t_avail = match &state.boards[b].in_flight {
                Some(f) => f.est_finish_s.max(state.now_s),
                None => state.now_s,
            };
            let mut kept = std::collections::VecDeque::new();
            while let Some(qj) = state.boards[b].pop_next() {
                let pred_finish = t_avail + qj.est_total_s();
                let deadline = qj.job.arrival_s + qj.slo_s;
                // Any active misprofile window corrupts the scan's
                // predictions too (the scan sees the same lie arrivals
                // do); not charged to clause stats — predictions are
                // not admissions.
                let mf = chaos.misprofile_factor(qj.job.class(), state.now_s, None);
                let target = if pred_finish > deadline && qj.migrations < scenario.max_migrations {
                    // Best alternative: lowest predicted finish among
                    // the other placeable boards, by observable
                    // estimates.
                    let module = &modules[qj.job.workload.name];
                    let mut best: Option<(f64, usize)> = None;
                    for b2 in state.placeable_boards().filter(|&b2| b2 != b) {
                        let (wall, _, _) = self.estimate_on(
                            exec,
                            profiles,
                            cache,
                            scenario.policy,
                            &qj.job,
                            module,
                            b2,
                        );
                        let wall = corrected(
                            wall * mf,
                            feedback,
                            &qj.job,
                            arches.keys[arches.of_board[b2]],
                        );
                        // The job keeps its already-accumulated penalty
                        // on the target board, so the prediction must
                        // carry it — or a re-migration could be
                        // approved that is itself predicted to miss.
                        let alt = state.online_busy_until_s(b2).max(state.now_s)
                            + qj.penalty_s
                            + scenario.migration_cost_s
                            + wall;
                        if best.map(|(t, _)| alt < t).unwrap_or(true) {
                            best = Some((alt, b2));
                        }
                    }
                    best.filter(|&(alt_finish, _)| alt_finish <= deadline)
                } else {
                    None
                };
                match target {
                    Some((_, b2)) => {
                        let qj2 = self.migrate_onto(
                            exec,
                            profiles,
                            cache,
                            scenario,
                            qj,
                            b2,
                            guard_bypasses,
                            modules,
                            feedback,
                            mf,
                        );
                        let module = &modules[qj2.job.workload.name];
                        ensure_static_build(progs, module, &qj2.job, &qj2.schedule, arches, b2);
                        state.boards[b2].dispatched += 1;
                        shards.deliver(
                            &mut state.boards,
                            ShardMsg::Enqueue {
                                board: b2,
                                job: qj2,
                            },
                            state.now_s,
                            &AdvanceCtx {
                                exec,
                                progs,
                                modules,
                                specs: &self.cluster.boards,
                                collect_observations: feedback.is_some(),
                            },
                        );
                        state.refresh_dispatch_index(b2);
                        stats.migrations += 1;
                    }
                    None => {
                        t_avail = pred_finish;
                        kept.push_back(qj);
                    }
                }
            }
            state.boards[b].set_queued(kept);
            state.refresh_dispatch_index(b);
        }
    }

    /// Observable (wall, energy) estimate of `job` on board `b` under
    /// the schedule it would run there (fresh cache line or stock
    /// binary), *uncorrected* — callers fold the feedback correction
    /// in via [`corrected`]. The single source of the policy-estimate
    /// rule: both arrival-time dispatch estimates and preemption-scan
    /// predictions go through here, so they can never disagree.
    #[allow(clippy::too_many_arguments)]
    fn estimate_on(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &PolicyCache,
        policy: PolicyMode,
        job: &JobSpec,
        module: &Module,
        b: usize,
    ) -> (f64, f64, bool) {
        let arch = self.cluster.arch_key(b);
        // One probe answers both "is it warm?" and "which schedule?" —
        // the estimate loop runs this per architecture per arrival.
        let warm = match policy {
            PolicyMode::Warm => cache.warm_peek(job.taxon, arch),
            PolicyMode::Cold => None,
        };
        let (wall, energy) = match warm {
            Some(e) => self.profile(
                exec,
                profiles,
                &job.workload,
                module,
                b,
                e.version as u64,
                Some(e.schedule),
            ),
            None => self.profile(
                exec,
                profiles,
                &job.workload,
                module,
                b,
                ProfileTable::COLD,
                None,
            ),
        };
        (wall, energy, warm.is_some())
    }
}

/// Apply the feedback correction to an uncorrected estimate (identity
/// when the layer is disabled — bit-for-bit, not just numerically).
fn corrected(
    wall_s: f64,
    feedback: Option<&ServiceFeedback>,
    job: &JobSpec,
    arch: &'static str,
) -> f64 {
    match feedback {
        Some(fb) => wall_s * fb.correction(job.taxon, arch),
        None => wall_s,
    }
}

/// Make sure the static build a queued job will run is compiled into
/// the program memo before the job reaches a shard (shards only read).
fn ensure_static_build(
    progs: &mut ProgramSet,
    module: &Module,
    job: &JobSpec,
    schedule: &Option<(astro_core::schedule::StaticSchedule, u32)>,
    arches: &ArchMap,
    b: usize,
) {
    if let Some((st, version)) = schedule {
        let key = (
            crate::sim::sk(job.workload.name),
            crate::sim::sk(arches.keys[arches.of_board[b]]),
            *version,
        );
        progs
            .warm
            .entry(key)
            .or_insert_with(|| compile(&build_static(module, st)).expect("static build compiles"));
    }
}

/// Fold one barrier merge into the run accounting: completions become
/// events, outcomes accumulate (when retained) or fold into the
/// streaming aggregates, and feedback observations are applied in
/// (completion time, job id) order so the learned state is identical
/// for every shard count.
///
/// The flight recorder observes the merge here too — and *only* here
/// for completion-derived telemetry: its records are sorted by the same
/// (finish time, id) key before the hook fires, so the recorded stream
/// is pinned for every shard count, and successive advance windows
/// `[from_s, to_s)` are disjoint and increasing, making the whole trace
/// monotone in sim time.
#[allow(clippy::too_many_arguments)]
fn fold_delta(
    mut delta: AdvanceDelta,
    state: &mut ClusterState,
    stats: &mut KernelStats,
    open: &mut usize,
    outcomes: &mut Vec<JobOutcome>,
    feedback: &mut Option<ServiceFeedback>,
    telemetry: &mut FlightRecorder,
    from_s: f64,
    to_s: f64,
    parallel: bool,
    retain: bool,
    stream: &mut Option<StreamAgg>,
) {
    // Shard threads mutate board state (completions pop queues and
    // start successors) outside the control plane's view; the boards
    // they touched are exactly the outcome boards, so the dispatch
    // index is repaired here, at the barrier, before any decision
    // reads it.
    for o in &delta.outcomes {
        state.refresh_dispatch_index(o.board);
    }
    stats.events += delta.completions;
    stats.completions += delta.completions;
    *open -= delta.completions as usize;
    if telemetry.enabled() && !delta.outcomes.is_empty() {
        let mut recs: Vec<CompletionRecord> = delta
            .outcomes
            .iter()
            .map(|o| CompletionRecord {
                finish_s: o.finish_s,
                latency_s: o.latency_s(),
                slo_s: o.slo_s,
                id: o.id,
                board: o.board,
                workload: o.workload,
            })
            .collect();
        recs.sort_by(|a, b| a.finish_s.total_cmp(&b.finish_s).then(a.id.cmp(&b.id)));
        telemetry.on_window(from_s, to_s, parallel, &recs);
    }
    if let Some(agg) = stream {
        // The shard fold concatenates per-shard outcome runs, whose
        // grouping depends on the shard count; pin the streaming fold
        // to (finish time, id) order so digest and float-sum state is
        // bit-identical for every shard count (barriers themselves sit
        // at control timestamps, which are shard-count-invariant).
        delta
            .outcomes
            .sort_by(|a, b| a.finish_s.total_cmp(&b.finish_s).then(a.id.cmp(&b.id)));
        for o in &delta.outcomes {
            agg.add(o);
        }
    }
    if retain {
        outcomes.extend(delta.outcomes);
    }
    if let Some(fb) = feedback {
        let mut obs = delta.observations;
        obs.sort_by(|x, y| x.finish_s.total_cmp(&y.finish_s).then(x.id.cmp(&y.id)));
        for o in obs {
            fb.observe(o.taxon, o.arch, o.profiled_s, o.observed_s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_orders_by_time_then_push() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::MonitorTick);
        q.push(1.0, EventKind::Arrival(0));
        q.push(1.0, EventKind::Completion { board: 3 });
        q.push(0.5, EventKind::BoardDown(1));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().unwrap().kind, EventKind::BoardDown(1));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        // Equal timestamps pop in push order.
        assert_eq!(a.kind, EventKind::Arrival(0));
        assert_eq!(b.kind, EventKind::Completion { board: 3 });
        assert!(a.seq < b.seq);
        assert_eq!(q.pop().unwrap().kind, EventKind::MonitorTick);
        assert!(q.pop().is_none());
        assert_eq!(q.pushed, 4);
        assert_eq!(q.popped, 4);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_is_strict() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Completion { board: 0 });
        q.push(2.0, EventKind::Completion { board: 1 });
        assert!(q.pop_before(1.0).is_none(), "strictly-before must exclude");
        assert_eq!(
            q.pop_before(1.5).unwrap().kind,
            EventKind::Completion { board: 0 }
        );
        assert!(q.pop_before(1.5).is_none());
        assert_eq!(q.peek().unwrap().time_s, 2.0);
        assert_eq!(
            q.pop_before(f64::INFINITY).unwrap().kind,
            EventKind::Completion { board: 1 }
        );
        assert!(q.is_empty());
    }

    #[test]
    fn scenario_builders_compose() {
        let s = Scenario::online(PolicyMode::Warm)
            .with_churn(vec![ChurnEvent {
                time_s: 1.0,
                board: 0,
                up: false,
            }])
            .with_preemption(0.5, 0.01, 3);
        assert_eq!(s.dispatch, DispatchMode::Online);
        assert!(s.preemption);
        assert_eq!(s.max_migrations, 3);
        assert_eq!(s.max_redispatches, u32::MAX);
        assert!(!s.feedback);
        assert_eq!(s.churn.len(), 1);
        assert_eq!(s.label(), "warm/online");
        let o = Scenario::oracle(PolicyMode::Cold);
        assert_eq!(o.dispatch, DispatchMode::Oracle);
        assert!(!o.preemption);
        assert_eq!(o.label(), "cold/oracle");
        let f = Scenario::online(PolicyMode::Warm)
            .with_feedback()
            .with_redispatch_cap(3);
        assert!(f.feedback);
        assert_eq!(f.max_redispatches, 3);
        assert_eq!(f.label(), "warm/online+fb");
    }

    use crate::arrival::{ArrivalProcess, GenCursor};
    use crate::cluster::ClusterSpec;
    use crate::dispatch::PhaseAware;
    use crate::sim::{FleetParams, FleetSim};
    use crate::telemetry::FlightRecorder;
    use astro_exec::executor::BackendKind;
    use astro_workloads::InputSize;

    fn ckpt_pool() -> Vec<astro_workloads::Workload> {
        ["swaptions", "bfs"]
            .iter()
            .map(|n| astro_workloads::by_name(n).unwrap())
            .collect()
    }

    fn ckpt_scenario() -> Scenario {
        Scenario::online(PolicyMode::Warm)
            .with_feedback()
            .with_churn(vec![
                ChurnEvent {
                    time_s: 0.002,
                    board: 1,
                    up: false,
                },
                ChurnEvent {
                    time_s: 0.004,
                    board: 1,
                    up: true,
                },
            ])
            .with_chaos(
                ChaosSchedule::new()
                    .throttle(2, 2.0, 0.001, 0.006)
                    .blackout(vec![3], 0.002, 0.005),
            )
    }

    fn ckpt_cursor() -> GenCursor {
        GenCursor::new(
            ArrivalProcess::Poisson {
                rate_jobs_per_s: 9_000.0,
            },
            60,
            &ckpt_pool(),
            InputSize::Test,
            (4.0, 8.0),
            7,
            &[],
        )
    }

    fn ckpt_params(shards: usize) -> FleetParams {
        let mut p = FleetParams::new(7);
        p.backend = BackendKind::Replay;
        p.shards = shards;
        p
    }

    /// Everything the determinism contract pins across a
    /// checkpoint/restore cycle under the *same* shard count.
    fn ckpt_fingerprint(out: &FleetOutcome) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}",
            out.metrics,
            out.kernel,
            out.chaos,
            out.stream,
            out.cache,
            out.dropped,
            out.guard_bypasses,
            out.train_time_s.to_bits(),
            out.train_energy_j.to_bits(),
        )
    }

    /// The shard-count-agnostic slice of the fingerprint: everything
    /// except the execution-plane counters (messages/advances vary
    /// with K by design).
    fn ckpt_fingerprint_any_k(out: &FleetOutcome) -> String {
        let mut k = out.kernel;
        k.shards = 0;
        k.messages = 0;
        k.advances = 0;
        k.par_advances = 0;
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}",
            out.metrics,
            k,
            out.chaos,
            out.stream,
            out.cache,
            out.dropped,
            out.guard_bypasses,
            out.train_time_s.to_bits(),
            out.train_energy_j.to_bits(),
        )
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identically() {
        let cluster = ClusterSpec::heterogeneous(6);
        let scenario = ckpt_scenario();

        // Uninterrupted streaming reference.
        let reference = {
            let sim = FleetSim::new(&cluster, ckpt_params(2));
            let mut cursor = ckpt_cursor();
            let mut dispatcher = PhaseAware::default();
            let mut cache = PolicyCache::new(8);
            let mut telemetry = FlightRecorder::off();
            let mut k = sim.resident(
                &mut cursor,
                &mut dispatcher,
                &mut cache,
                &scenario,
                &mut telemetry,
                false,
            );
            k.run();
            k.finish()
        };

        // Interrupted run: step partway, checkpoint, keep going —
        // taking the checkpoint must not perturb the run.
        let (bytes, undisturbed) = {
            let sim = FleetSim::new(&cluster, ckpt_params(2));
            let mut cursor = ckpt_cursor();
            let mut dispatcher = PhaseAware::default();
            let mut cache = PolicyCache::new(8);
            let mut telemetry = FlightRecorder::off();
            let mut k = sim.resident(
                &mut cursor,
                &mut dispatcher,
                &mut cache,
                &scenario,
                &mut telemetry,
                false,
            );
            for _ in 0..40 {
                assert!(k.step(), "fixture must checkpoint mid-run");
            }
            let bytes = k.checkpoint();
            k.run();
            (bytes, k.finish())
        };
        assert_eq!(ckpt_fingerprint(&reference), ckpt_fingerprint(&undisturbed));

        // Restore into a fresh kernel (same config, same K) and drain.
        let resumed = {
            let sim = FleetSim::new(&cluster, ckpt_params(2));
            let mut cursor = ckpt_cursor();
            let mut dispatcher = PhaseAware::default();
            let mut cache = PolicyCache::new(8);
            let mut telemetry = FlightRecorder::off();
            let mut k = sim.resident(
                &mut cursor,
                &mut dispatcher,
                &mut cache,
                &scenario,
                &mut telemetry,
                false,
            );
            k.restore(&bytes).expect("restore succeeds");
            k.run();
            k.finish()
        };
        assert_eq!(ckpt_fingerprint(&reference), ckpt_fingerprint(&resumed));

        // Resume under a different shard count: everything but the
        // execution-plane counters is still bit-identical.
        let resumed_k5 = {
            let sim = FleetSim::new(&cluster, ckpt_params(5));
            let mut cursor = ckpt_cursor();
            let mut dispatcher = PhaseAware::default();
            let mut cache = PolicyCache::new(8);
            let mut telemetry = FlightRecorder::off();
            let mut k = sim.resident(
                &mut cursor,
                &mut dispatcher,
                &mut cache,
                &scenario,
                &mut telemetry,
                false,
            );
            k.restore(&bytes).expect("restore under a new K succeeds");
            k.run();
            k.finish()
        };
        assert_eq!(
            ckpt_fingerprint_any_k(&reference),
            ckpt_fingerprint_any_k(&resumed_k5)
        );
    }

    #[test]
    fn checkpoint_rejects_malformed_bytes() {
        let cluster = ClusterSpec::heterogeneous(6);
        let scenario = ckpt_scenario();
        let sim = FleetSim::new(&cluster, ckpt_params(2));
        let mut cursor = ckpt_cursor();
        let mut dispatcher = PhaseAware::default();
        let mut cache = PolicyCache::new(8);
        let mut telemetry = FlightRecorder::off();
        let mut k = sim.resident(
            &mut cursor,
            &mut dispatcher,
            &mut cache,
            &scenario,
            &mut telemetry,
            false,
        );
        for _ in 0..40 {
            assert!(k.step());
        }
        let bytes = k.checkpoint();

        // Any single byte flip anywhere is caught by the checksum.
        for at in [0, 4, 12, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(
                k.restore(&bad).is_err(),
                "byte flip at {at} must be rejected"
            );
        }
        // Truncation at any point is rejected.
        for cut in [0, 7, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                k.restore(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
        // Bad magic and bad version (re-sealed so the checksum passes)
        // fail with their specific errors.
        let payload = &bytes[..bytes.len() - 8];
        let mut magic = payload.to_vec();
        magic[0] = b'X';
        assert_eq!(
            k.restore(&checkpoint::seal(magic)),
            Err(CheckpointError::BadMagic)
        );
        let mut version = payload.to_vec();
        version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            k.restore(&checkpoint::seal(version)),
            Err(CheckpointError::BadVersion { found: 99, .. })
        ));
        // A checkpoint from a different configuration is refused.
        let other = {
            let sim2 = FleetSim::new(&cluster, ckpt_params(2));
            let mut c2 = ckpt_cursor();
            let mut d2 = PhaseAware::default();
            let mut cache2 = PolicyCache::new(8);
            let mut t2 = FlightRecorder::off();
            let s2 = Scenario::online(PolicyMode::Warm); // no feedback: different label
            let mut k2 = sim2.resident(&mut c2, &mut d2, &mut cache2, &s2, &mut t2, false);
            k2.step();
            k2.checkpoint()
        };
        assert!(matches!(
            k.restore(&other),
            Err(CheckpointError::ConfigMismatch { .. })
        ));

        // Every rejection above left the kernel untouched: the good
        // bytes still restore and the run still drains cleanly.
        k.restore(&bytes)
            .expect("good bytes restore after rejections");
        k.run();
        let out = k.finish();
        assert_eq!(
            out.kernel.arrivals,
            out.kernel.completions + out.kernel.dropped
        );
    }
}
