//! The discrete-event fleet kernel: a virtual-clock event loop driving
//! online dispatch, preemptive redispatch and board churn, executed
//! over a sharded state plane.
//!
//! Earlier revisions planned every placement in one sequential batch
//! pass and only then executed boards; PR 4 replaced that with a
//! single event loop over a monotone virtual clock, and this revision
//! splits that loop into two planes so board count stops being a
//! sequential bottleneck:
//!
//! * **The control plane** (this module) owns every decision that
//!   reads global state: [`EventKind::Arrival`] (dispatcher invoked
//!   *now* against the live [`ClusterState`]),
//!   [`EventKind::MonitorTick`] (preemptive redispatch of predicted
//!   SLO-missers), and [`EventKind::BoardDown`] /
//!   [`EventKind::BoardUp`] churn. It runs sequentially, in one
//!   deterministic (time, seed-order) sequence, because online
//!   dispatch observes every board at once.
//! * **The execution plane** ([`crate::shard`]) owns everything that
//!   is board-local: [`EventKind::Completion`] chains — a board
//!   finishing a job and starting its next — partitioned into
//!   [`crate::shard::ShardSet`] shards that advance independently
//!   between control timestamps and fold back at a barrier merge.
//!   Placements are routed to shards as typed
//!   [`crate::shard::ShardMsg`] values.
//!
//! Everything stays seed-deterministic *and shard-count-invariant*:
//! events at equal timestamps keep the sequential kernel's order
//! except same-time completions on different boards, which commute;
//! every service time is a pure function of the request; and
//! order-sensitive feedback observations are merged in (time, id)
//! order at the barrier. `shards = 1` *is* the PR 4 kernel,
//! byte-for-byte. [`DispatchMode::Oracle`] reproduces the original
//! batch planner's placements through this same loop, so historical
//! comparisons stay meaningful; [`DispatchMode::Online`] is the
//! live-feedback upgrade, and [`Scenario::with_feedback`] closes the
//! loop further by correcting profiled estimates with observed
//! service times.

use crate::cache::{CacheDecision, PolicyCache};
use crate::chaos::{ChaosSchedule, ChaosStats, CompiledChaos};
use crate::dispatch::{Dispatcher, JobEstimates};
use crate::feedback::ServiceFeedback;
use crate::job::{JobOutcome, JobSpec};
use crate::metrics::{FleetMetrics, FleetOutcome};
use crate::shard::{AdvanceCtx, AdvanceDelta, ProgramSet, ShardMsg, ShardSet};
use crate::sim::{FleetSim, PolicyMode, ProfileTable};
use crate::state::{ClusterState, DispatchMode, DropReason, DroppedJob, QueuedJob};
use crate::telemetry::{CompletionRecord, FlightRecorder, WindowSample};
use astro_core::pipeline::build_static;
use astro_exec::executor::{Executor, MachineExecutor};
use astro_exec::program::compile;
use astro_ir::Module;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// What happens at an event's timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Job `jobs[i]` enters the system.
    Arrival(u32),
    /// The board's in-flight job finishes.
    Completion {
        /// Board index.
        board: u32,
    },
    /// Periodic observation point (preemption scans run here).
    MonitorTick,
    /// Board churn: the board stops accepting work and its queue is
    /// redistributed (the in-flight job drains).
    BoardDown(u32),
    /// Board churn: the board is available again.
    BoardUp(u32),
    /// Chaos: a thermal-throttle window opens on the board. The clause
    /// index resolves the factor in the compiled schedule (kept out of
    /// the event so [`EventKind`] stays `Copy + Eq`).
    ThrottleStart {
        /// Board index.
        board: u32,
        /// Index into the scenario's chaos clauses.
        clause: u32,
    },
    /// Chaos: the matching throttle window closes.
    ThrottleEnd {
        /// Board index.
        board: u32,
        /// Index into the scenario's chaos clauses.
        clause: u32,
    },
    /// Chaos: a dispatch-blackout window opens on the board (it keeps
    /// executing but accepts no new placements).
    BlackoutStart {
        /// Board index.
        board: u32,
        /// Index into the scenario's chaos clauses.
        clause: u32,
    },
    /// Chaos: the matching blackout window closes.
    BlackoutEnd {
        /// Board index.
        board: u32,
        /// Index into the scenario's chaos clauses.
        clause: u32,
    },
}

impl EventKind {
    /// Is this a fleet *state change* (churn or chaos window edge)?
    /// State changes beat arrivals at equal timestamps — the pinned
    /// control tie order churn < chaos < arrival < monitor tick.
    fn is_state_change(self) -> bool {
        matches!(
            self,
            EventKind::BoardDown(_)
                | EventKind::BoardUp(_)
                | EventKind::ThrottleStart { .. }
                | EventKind::ThrottleEnd { .. }
                | EventKind::BlackoutStart { .. }
                | EventKind::BlackoutEnd { .. }
        )
    }
}

/// One scheduled event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Virtual timestamp, seconds.
    pub time_s: f64,
    /// Push order — the deterministic tie-breaker at equal timestamps.
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time_s.total_cmp(&other.time_s) == Ordering::Equal && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Min-first: earliest timestamp, then earliest push.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_s
            .total_cmp(&self.time_s)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A pending-event queue: a binary heap popping the earliest timestamp
/// first, ties broken by push order so processing is deterministic
/// whatever the float values. The control plane keeps one for churn
/// and monitor ticks; every shard keeps one for its boards'
/// completions.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    /// Events ever pushed.
    pub pushed: u64,
    /// Events ever popped.
    pub popped: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` at `time_s`.
    pub fn push(&mut self, time_s: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Event { time_s, seq, kind });
    }

    /// Earliest event, earliest push first at equal times.
    pub fn pop(&mut self) -> Option<Event> {
        let ev = self.heap.pop();
        if ev.is_some() {
            self.popped += 1;
        }
        ev
    }

    /// The earliest pending event, without popping it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek()
    }

    /// Pop the earliest event only if it is strictly before `to_s`.
    pub fn pop_before(&mut self, to_s: f64) -> Option<Event> {
        match self.heap.peek() {
            Some(ev) if ev.time_s < to_s => self.pop(),
            _ => None,
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is anything pending?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One board leaving or (re)joining the fleet mid-run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnEvent {
    /// When, seconds.
    pub time_s: f64,
    /// Which board.
    pub board: usize,
    /// `true` = joins, `false` = leaves.
    pub up: bool,
}

/// What one kernel run does beyond dispatching: mode, churn schedule,
/// preemptive redispatch, observed-service feedback.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Cold stock binaries vs warm cached Astro policies.
    pub policy: PolicyMode,
    /// Which backlog estimate dispatchers observe.
    pub dispatch: DispatchMode,
    /// Board up/down schedule (empty = stable fleet).
    pub churn: Vec<ChurnEvent>,
    /// Migrate queued jobs predicted to miss their SLO at monitor ticks.
    /// Requires [`DispatchMode::Online`] and a positive tick interval.
    pub preemption: bool,
    /// Monitor tick period, seconds (`0` = no ticks).
    pub monitor_interval_s: f64,
    /// Service-time penalty each migration/redistribution pays (state
    /// transfer), seconds.
    pub migration_cost_s: f64,
    /// Total migrations allowed per job before the preemption scan
    /// stops considering it. The counter it gates
    /// ([`QueuedJob::migrations`](crate::state::QueuedJob)) includes
    /// churn redistributions as well as preemptive moves — the PR 4
    /// semantics, preserved bit-for-bit.
    pub max_migrations: u32,
    /// Churn redistributions allowed per job before it is dropped with
    /// [`DropReason::MigrationCap`]. Counted by its own
    /// [`QueuedJob::redispatches`](crate::state::QueuedJob) counter,
    /// so preemptive migrations never consume this cap. The default
    /// (`u32::MAX`) reproduces the uncapped PR 4 behaviour: a down
    /// board's queue must go somewhere.
    pub max_redispatches: u32,
    /// Feed observed service times from completions back into
    /// dispatch-time estimates through the per-(taxon, architecture)
    /// EWMA layer ([`ServiceFeedback`]).
    pub feedback: bool,
    /// Adversarial chaos clauses compiled into the control-plane event
    /// stream (empty = no chaos; the no-chaos paths are bit-for-bit
    /// the PR 5 kernel — the golden tests pin this).
    pub chaos: ChaosSchedule,
}

impl Scenario {
    /// Batch-equivalent semantics: oracle estimates, stable fleet, no
    /// preemption — the configuration that reproduces the three-stage
    /// planner's placements through the event kernel.
    pub fn oracle(policy: PolicyMode) -> Self {
        Scenario {
            policy,
            dispatch: DispatchMode::Oracle,
            churn: Vec::new(),
            preemption: false,
            monitor_interval_s: 0.0,
            migration_cost_s: 0.0,
            max_migrations: 2,
            max_redispatches: u32::MAX,
            feedback: false,
            chaos: ChaosSchedule::default(),
        }
    }

    /// Live dispatch against observable cluster state.
    pub fn online(policy: PolicyMode) -> Self {
        Scenario {
            dispatch: DispatchMode::Online,
            ..Scenario::oracle(policy)
        }
    }

    /// Add a board churn schedule.
    pub fn with_churn(mut self, churn: Vec<ChurnEvent>) -> Self {
        self.churn = churn;
        self
    }

    /// Enable deadline-driven preemptive redispatch: scan every
    /// `interval_s`, migrate at cost `cost_s`, at most `max_migrations`
    /// times per job.
    pub fn with_preemption(mut self, interval_s: f64, cost_s: f64, max_migrations: u32) -> Self {
        assert!(
            interval_s > 0.0,
            "preemption needs a positive tick interval"
        );
        self.preemption = true;
        self.monitor_interval_s = interval_s;
        self.migration_cost_s = cost_s;
        self.max_migrations = max_migrations;
        self
    }

    /// Set the migration cost without enabling preemption (churn
    /// redistribution pays it too).
    pub fn with_migration_cost(mut self, cost_s: f64) -> Self {
        self.migration_cost_s = cost_s;
        self
    }

    /// Cap churn redistributions per job: a job orphaned by board
    /// churn more than `cap` times is dropped with
    /// [`DropReason::MigrationCap`] instead of bouncing forever.
    pub fn with_redispatch_cap(mut self, cap: u32) -> Self {
        self.max_redispatches = cap;
        self
    }

    /// Attach a chaos schedule: its clauses are validated against the
    /// churn schedule at run start and compiled into the control-plane
    /// event stream (see [`crate::chaos`]). Traffic clauses are *not*
    /// applied here — shape the job stream with
    /// [`ArrivalProcess::generate_shaped`](crate::arrival::ArrivalProcess::generate_shaped).
    pub fn with_chaos(mut self, chaos: ChaosSchedule) -> Self {
        self.chaos = chaos;
        self
    }

    /// Enable the observed-service feedback layer: completions teach a
    /// per-(taxon, architecture) EWMA correction that dispatch-time
    /// estimates — and therefore the phase-aware and energy-aware
    /// dispatchers, backlog predictions and preemption scans — consult
    /// on every subsequent decision.
    pub fn with_feedback(mut self) -> Self {
        self.feedback = true;
        self
    }

    /// `policy/dispatch` label for reports (`+fb` when the feedback
    /// layer is on).
    pub fn label(&self) -> String {
        format!(
            "{}/{}{}",
            self.policy.name(),
            self.dispatch.name(),
            if self.feedback { "+fb" } else { "" }
        )
    }
}

/// Event accounting for one kernel run. Invariant at exit:
/// `arrivals == completions + dropped` and
/// `dropped == dropped_no_board + dropped_migration_cap`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Events processed.
    pub events: u64,
    /// Arrival events.
    pub arrivals: u64,
    /// Completion events.
    pub completions: u64,
    /// Jobs dropped (all reasons).
    pub dropped: u64,
    /// Jobs dropped because no board was up to take them.
    pub dropped_no_board: u64,
    /// Jobs dropped because churn redistributed them past
    /// [`Scenario::max_redispatches`].
    pub dropped_migration_cap: u64,
    /// Preemptive (SLO-driven) migrations.
    pub migrations: u64,
    /// Churn-driven queue redistributions.
    pub redistributions: u64,
    /// Monitor ticks processed.
    pub ticks: u64,
    /// Boards taken down (scenario churn and chaos rack outages both
    /// land here — outages *are* churn events).
    pub board_downs: u64,
    /// Boards brought (back) up.
    pub board_ups: u64,
    /// Chaos throttle/blackout window-edge events processed (rack
    /// outages count as board downs/ups instead).
    pub chaos_events: u64,
    /// Shards the execution plane was partitioned into.
    pub shards: u32,
    /// Typed messages delivered to shards (placements, migrations,
    /// redistributions).
    pub messages: u64,
    /// Barrier advances of the execution plane.
    pub advances: u64,
    /// Advances that fanned shards out across OS threads.
    pub par_advances: u64,
}

/// Board-architecture lookup tables, computed once per run so the
/// per-arrival estimate work is O(architectures), not O(boards).
struct ArchMap {
    /// Distinct architecture keys, first-appearance order.
    keys: Vec<&'static str>,
    /// Architecture index of every board.
    of_board: Vec<usize>,
    /// A representative board index per architecture.
    representative: Vec<usize>,
}

impl ArchMap {
    fn new(cluster: &crate::cluster::ClusterSpec) -> Self {
        let keys = cluster.arch_keys();
        let of_board = (0..cluster.len())
            .map(|b| {
                keys.iter()
                    .position(|&k| k == cluster.arch_key(b))
                    .expect("every board's arch is in arch_keys")
            })
            .collect();
        let representative = keys
            .iter()
            .map(|k| cluster.representative_board_idx(k))
            .collect();
        ArchMap {
            keys,
            of_board,
            representative,
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Per-run scratch for estimate construction, refilled in place per
/// arrival so estimating allocates nothing however many jobs stream
/// through. The per-architecture arrays are sized to the cluster's
/// distinct architecture count — any number of architectures works.
struct EstScratch {
    /// Per-board estimates handed to dispatchers (feedback-corrected).
    est: JobEstimates,
    /// Uncorrected per-architecture profiled walls — what policy
    /// resolution and the admission guard reason about.
    base_s: Vec<f64>,
    /// Corrected per-architecture service estimates.
    service_s: Vec<f64>,
    /// Per-architecture energy estimates.
    energy_j: Vec<f64>,
    /// Per-architecture warm-cache bits.
    warm: Vec<bool>,
}

impl EstScratch {
    fn new(n_boards: usize, n_arches: usize) -> Self {
        EstScratch {
            est: JobEstimates::zeroed(n_boards),
            base_s: vec![0.0; n_arches],
            service_s: vec![0.0; n_arches],
            energy_j: vec![0.0; n_arches],
            warm: vec![false; n_arches],
        }
    }
}

impl FleetSim<'_> {
    /// The event loop. Public API is [`FleetSim::run`] /
    /// [`FleetSim::run_traced`]. `telemetry` is the flight recorder:
    /// every hook reads kernel state and writes only recorder state, so
    /// the returned outcome is byte-identical whatever the trace level
    /// (including [`crate::telemetry::TraceLevel::Off`], where each
    /// hook is one predicted-false branch).
    pub(crate) fn run_kernel(
        &self,
        jobs: &[JobSpec],
        dispatcher: &mut dyn Dispatcher,
        cache: &mut PolicyCache,
        scenario: &Scenario,
        telemetry: &mut FlightRecorder,
    ) -> FleetOutcome {
        let n_boards = self.cluster.len();
        assert!(
            !scenario.preemption
                || (scenario.dispatch == DispatchMode::Online && scenario.monitor_interval_s > 0.0),
            "preemption requires online dispatch and a positive monitor interval"
        );
        for ev in &scenario.churn {
            assert!(
                ev.board < n_boards,
                "churn event names board {} of {n_boards}",
                ev.board
            );
            assert!(ev.time_s >= 0.0, "churn events cannot predate the run");
        }

        // Compile the chaos schedule (validating clause shapes), then
        // reject inconsistent liveness sequences outright: replaying
        // the merged churn + rack-outage events in their exact pop
        // order (time, then push order — churn before chaos), a
        // BoardUp for a board that is already up, or a BoardDown for
        // one already down, is a schedule bug, not a scenario. It used
        // to be silently absorbed (`up = true` is idempotent), which
        // let e.g. a mistyped board index skew every later decision
        // without a trace.
        let chaos = scenario.chaos.compile(n_boards);
        let mut chaos_stats = chaos.stats.clone();
        {
            let mut seq: Vec<(f64, bool, usize)> = scenario
                .churn
                .iter()
                .map(|ev| (ev.time_s, ev.up, ev.board))
                .collect();
            for (t, kind) in &chaos.events {
                match kind {
                    EventKind::BoardDown(b) => seq.push((*t, false, *b as usize)),
                    EventKind::BoardUp(b) => seq.push((*t, true, *b as usize)),
                    _ => {}
                }
            }
            // Stable sort: equal timestamps keep push order, exactly
            // as the control queue will pop them.
            seq.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut up = vec![true; n_boards];
            for (t, to_up, b) in seq {
                if to_up {
                    assert!(
                        !up[b],
                        "inconsistent churn/chaos schedule: board {b} is brought up at {t} s \
                         without a preceding BoardDown"
                    );
                } else {
                    assert!(
                        up[b],
                        "inconsistent churn/chaos schedule: board {b} is taken down at {t} s \
                         while already down"
                    );
                }
                up[b] = to_up;
            }
        }

        // Source modules, one per distinct workload in the stream.
        let mut modules: BTreeMap<&'static str, Module> = BTreeMap::new();
        for job in jobs {
            modules
                .entry(job.workload.name)
                .or_insert_with(|| (job.workload.build)(self.params.size));
        }

        // Calibration-then-replay: record every (workload, architecture)
        // trace set up front, in deterministic order (earlier runs of
        // this simulator are cache hits).
        if let Some(replay) = &self.replay_exec {
            for key in self.cluster.arch_keys() {
                let board = self.cluster.representative_board(key);
                for (name, module) in &modules {
                    replay.calibrate(name, module, board);
                }
            }
        }

        // The execution backend every profile and job run goes through.
        // On the replay backend this is a calibration-cache *session*
        // snapshotted after the pre-pass above: one rwlock acquisition
        // for the whole run, answered lock-free per job thereafter.
        let machine_exec = MachineExecutor {
            params: self.params.machine,
        };
        let session = self.replay_exec.as_ref().map(|r| r.session());
        let exec: &dyn Executor = match &session {
            Some(s) => s,
            None => &machine_exec,
        };

        // Stock binaries compiled up front; static builds are compiled
        // by the control plane at dispatch/migration time. Either way
        // the shards only ever read the memo.
        let mut progs = ProgramSet::default();
        for (name, module) in &modules {
            progs.cold.insert(
                crate::sim::sk(name),
                compile(module).expect("workload compiles"),
            );
        }

        let arches = ArchMap::new(self.cluster);
        let mut profiles = ProfileTable::new();
        let mut state = ClusterState::new(self.cluster, scenario.dispatch);
        // Indexed argmin dispatch: the kernel maintains the index at
        // every board mutation below, so picks stop scanning O(boards).
        state.rebuild_dispatch_index();
        let mut shards = ShardSet::new(n_boards, self.params.shards);
        let workers = self.params.shard_workers.max(1);
        let mut stats = KernelStats {
            shards: shards.len() as u32,
            ..KernelStats::default()
        };
        let mut feedback = scenario.feedback.then(ServiceFeedback::default);
        let mut train_time_s = 0.0;
        let mut train_energy_j = 0.0;
        let mut guard_bypasses = 0u64;
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
        let mut dropped: Vec<DroppedJob> = Vec::new();
        // Per-arrival scratch, refilled in place (no per-event allocs).
        let mut scratch = EstScratch::new(n_boards, arches.len());

        // The control queue: churn first (so a down-at-t beats an
        // arrival at the same t), then the compiled chaos events in
        // clause order, then the first monitor tick. Arrivals are
        // consumed from the (sorted) stream through a cursor, which
        // preserves the same tie order the sequential kernel's seeding
        // produced — pinned: churn < chaos < arrival < tick at equal
        // timestamps (within churn and within chaos, push order).
        let mut ctrl = EventQueue::new();
        for ev in &scenario.churn {
            ctrl.push(
                ev.time_s,
                if ev.up {
                    EventKind::BoardUp(ev.board as u32)
                } else {
                    EventKind::BoardDown(ev.board as u32)
                },
            );
        }
        for &(t, kind) in &chaos.events {
            ctrl.push(t, kind);
        }
        if scenario.monitor_interval_s > 0.0 {
            ctrl.push(scenario.monitor_interval_s, EventKind::MonitorTick);
        }
        let mut next_arrival = 0usize;

        // Jobs not yet completed or dropped.
        let mut open = jobs.len();

        // Wall-clock phase profiling (machine time, recorder-gated —
        // the off path never reads the OS clock).
        let wall_run = telemetry.stopwatch();

        loop {
            // The next control event: the earlier of the arrival cursor
            // and the control queue, ties resolved churn < arrival < tick
            // (the order the sequential kernel's seeding produced).
            let arrival_t = jobs.get(next_arrival).map(|j| j.arrival_s);
            let queued = ctrl.peek().copied();
            let take_ctrl = match (arrival_t, &queued) {
                (None, None) => false,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(ta), Some(e)) => {
                    e.time_s < ta || (e.time_s == ta && e.kind.is_state_change())
                }
            };
            let ctl = if take_ctrl {
                ctrl.pop().map(|e| (e.time_s, e.kind))
            } else if let Some(ta) = arrival_t {
                let i = next_arrival;
                next_arrival += 1;
                Some((ta, EventKind::Arrival(i as u32)))
            } else {
                None
            };

            let Some((time_s, kind)) = ctl else {
                // No control left: drain every shard's completion chain.
                let from_s = state.now_s;
                let wall = telemetry.stopwatch();
                let delta = shards.advance_all(
                    &mut state.boards,
                    f64::INFINITY,
                    workers,
                    &AdvanceCtx {
                        exec,
                        progs: &progs,
                        modules: &modules,
                        specs: &self.cluster.boards,
                        collect_observations: feedback.is_some(),
                    },
                );
                telemetry.lap_advance(wall);
                let parallel = shards.last_parallel;
                let wall = telemetry.stopwatch();
                fold_delta(
                    delta,
                    &mut state,
                    &mut stats,
                    &mut open,
                    &mut outcomes,
                    &mut feedback,
                    telemetry,
                    from_s,
                    f64::INFINITY,
                    parallel,
                );
                telemetry.lap_merge(wall);
                break;
            };

            // Barrier: every completion strictly before this control
            // event is folded in before the decision reads any state.
            let from_s = state.now_s;
            let wall = telemetry.stopwatch();
            let delta = shards.advance_all(
                &mut state.boards,
                time_s,
                workers,
                &AdvanceCtx {
                    exec,
                    progs: &progs,
                    modules: &modules,
                    specs: &self.cluster.boards,
                    collect_observations: feedback.is_some(),
                },
            );
            telemetry.lap_advance(wall);
            let parallel = shards.last_parallel;
            let wall = telemetry.stopwatch();
            fold_delta(
                delta,
                &mut state,
                &mut stats,
                &mut open,
                &mut outcomes,
                &mut feedback,
                telemetry,
                from_s,
                time_s,
                parallel,
            );
            telemetry.lap_merge(wall);
            debug_assert!(
                time_s >= state.now_s - 1e-9,
                "virtual clock ran backwards: {} -> {}",
                state.now_s,
                time_s
            );
            state.advance_now(time_s);
            stats.events += 1;

            match kind {
                EventKind::Arrival(i) => {
                    stats.arrivals += 1;
                    let job = jobs[i as usize];
                    if !state.any_placeable() {
                        // Whole fleet down — or every up board under a
                        // dispatch blackout. Both route through the
                        // existing no-board-up drop path; the chaos
                        // accounting distinguishes them.
                        if state.any_up() {
                            chaos_stats.blackout_drops += 1;
                        }
                        dropped.push(DroppedJob {
                            id: job.id,
                            reason: DropReason::NoBoardUp,
                        });
                        stats.dropped += 1;
                        stats.dropped_no_board += 1;
                        open -= 1;
                        telemetry.on_drop(time_s, job.id, DropReason::NoBoardUp.name());
                        continue;
                    }
                    let module = &modules[job.workload.name];
                    let slo_s = self.estimates_into(
                        exec,
                        &mut profiles,
                        cache,
                        scenario.policy,
                        &job,
                        module,
                        &arches,
                        feedback.as_ref(),
                        &mut scratch,
                    );
                    // Mis-profiled taxa: corrupt what the dispatcher
                    // and admission see (never the SLO — deadlines are
                    // contracts, not estimates).
                    let mf = chaos.misprofile_factor(job.class(), time_s, Some(&mut chaos_stats));
                    if mf != 1.0 {
                        for s in &mut scratch.est.service_s {
                            *s *= mf;
                        }
                    }
                    let b = dispatcher.pick(&state, &job, &scratch.est);
                    assert!(b < n_boards, "dispatcher picked board {b} of {n_boards}");
                    assert!(
                        state.placeable(b),
                        "dispatcher picked down or blacked-out board {b}"
                    );

                    // Policy resolution (training on miss/staleness) and
                    // admission latency guard.
                    let (schedule, profiled_s) = self.resolve_with_training(
                        exec,
                        &mut profiles,
                        cache,
                        scenario.policy,
                        &job,
                        module,
                        b,
                        scratch.base_s[arches.of_board[b]],
                        &mut train_time_s,
                        &mut train_energy_j,
                        &mut guard_bypasses,
                    );
                    ensure_static_build(&mut progs, module, &job, &schedule, &arches, b);
                    // The corrupted profiled estimate is what the job
                    // is admitted with — and what the feedback layer
                    // later compares observed service against, which
                    // is exactly how the EWMA learns the 1/mf repair.
                    let profiled_s = profiled_s * mf;
                    let svc_est = corrected(
                        profiled_s,
                        feedback.as_ref(),
                        &job,
                        arches.keys[arches.of_board[b]],
                    );

                    // Oracle accumulator: batch stage-1 semantics.
                    let acc = &mut state.boards[b].oracle_busy_until_s;
                    *acc = acc.max(job.arrival_s) + svc_est;
                    state.boards[b].dispatched += 1;

                    let qj = QueuedJob {
                        job,
                        slo_s,
                        schedule,
                        sched_arch: self.cluster.arch_key(b),
                        est_service_s: svc_est,
                        profiled_s,
                        penalty_s: 0.0,
                        migrations: 0,
                        redispatches: 0,
                    };
                    shards.deliver(
                        &mut state.boards,
                        ShardMsg::Enqueue { board: b, job: qj },
                        state.now_s,
                        &AdvanceCtx {
                            exec,
                            progs: &progs,
                            modules: &modules,
                            specs: &self.cluster.boards,
                            collect_observations: feedback.is_some(),
                        },
                    );
                    state.refresh_dispatch_index(b);
                    telemetry.on_dispatch(time_s, job.id, job.workload.name, b, svc_est);
                }

                EventKind::MonitorTick => {
                    stats.ticks += 1;
                    if scenario.preemption {
                        let migrated_before = stats.migrations;
                        self.preempt_scan(
                            exec,
                            &mut profiles,
                            cache,
                            scenario,
                            &mut state,
                            &mut shards,
                            &mut progs,
                            &modules,
                            &arches,
                            feedback.as_ref(),
                            &chaos,
                            &mut stats,
                            &mut guard_bypasses,
                        );
                        telemetry.on_preempt_scan(time_s, stats.migrations - migrated_before);
                    }
                    // Sample the fleet's gauges for the recorder. Gated
                    // on the level so the gauge walk costs nothing when
                    // telemetry is off; reads state only, so it cannot
                    // perturb the run either way.
                    if telemetry.wants_ticks() {
                        let nb = state.boards.len();
                        let mut mean_util = 0.0;
                        let mut queue_depth = 0u64;
                        let mut backlog_s = 0.0;
                        let mut boards_up = 0u32;
                        let mut boards_placeable = 0u32;
                        let mut throttled = 0u32;
                        let mut blacked_out = 0u32;
                        for b in 0..nb {
                            mean_util += state.utilisation(b);
                            queue_depth += state.queue_depth(b) as u64;
                            backlog_s += state.backlog_s(b);
                            if state.up(b) {
                                boards_up += 1;
                            }
                            if state.placeable(b) {
                                boards_placeable += 1;
                            }
                            if !state.boards[b].throttles.is_empty() {
                                throttled += 1;
                            }
                            if state.boards[b].blackouts > 0 {
                                blacked_out += 1;
                            }
                        }
                        let (p50_s, p95_s, p99_s) = telemetry.latency_so_far();
                        let (fb_err, fb_samples, fb_corr) = match &feedback {
                            Some(fb) => (
                                fb.stats.mean_abs_rel_err(),
                                fb.stats.samples,
                                fb.mean_correction(),
                            ),
                            None => (0.0, 0, 1.0),
                        };
                        telemetry.on_tick(WindowSample {
                            t_s: time_s,
                            completions: telemetry.completions(),
                            p50_s,
                            p95_s,
                            p99_s,
                            slo_miss_rate: telemetry.slo_miss_rate(),
                            mean_util: mean_util / nb as f64,
                            queue_depth,
                            backlog_s,
                            boards_up,
                            boards_placeable,
                            throttled,
                            blacked_out,
                            feedback_mean_abs_rel_err: fb_err,
                            feedback_samples: fb_samples,
                            feedback_mean_correction: fb_corr,
                        });
                    }
                    if open > 0 {
                        ctrl.push(
                            state.now_s + scenario.monitor_interval_s,
                            EventKind::MonitorTick,
                        );
                    }
                }

                EventKind::BoardDown(b) => {
                    stats.board_downs += 1;
                    let b = b as usize;
                    telemetry.on_churn(time_s, b, false);
                    state.set_up(b, false);
                    // The in-flight job drains; queued work is
                    // redistributed (or dropped when nowhere is up or
                    // the redispatch cap is exhausted).
                    let orphans = state.boards[b].take_queued();
                    for qj in orphans {
                        if !state.any_placeable() {
                            if state.any_up() {
                                chaos_stats.blackout_drops += 1;
                            }
                            dropped.push(DroppedJob {
                                id: qj.job.id,
                                reason: DropReason::NoBoardUp,
                            });
                            stats.dropped += 1;
                            stats.dropped_no_board += 1;
                            open -= 1;
                            telemetry.on_drop(time_s, qj.job.id, DropReason::NoBoardUp.name());
                            continue;
                        }
                        if qj.redispatches >= scenario.max_redispatches {
                            dropped.push(DroppedJob {
                                id: qj.job.id,
                                reason: DropReason::MigrationCap,
                            });
                            stats.dropped += 1;
                            stats.dropped_migration_cap += 1;
                            open -= 1;
                            telemetry.on_drop(time_s, qj.job.id, DropReason::MigrationCap.name());
                            continue;
                        }
                        stats.redistributions += 1;
                        self.redispatch(
                            exec,
                            &mut profiles,
                            cache,
                            scenario,
                            dispatcher,
                            &mut state,
                            &mut shards,
                            &mut progs,
                            &modules,
                            &arches,
                            feedback.as_ref(),
                            &chaos,
                            qj,
                            &mut guard_bypasses,
                            &mut scratch,
                            &mut chaos_stats,
                        );
                    }
                }

                EventKind::BoardUp(b) => {
                    stats.board_ups += 1;
                    telemetry.on_churn(time_s, b as usize, true);
                    state.set_up(b as usize, true);
                }

                EventKind::ThrottleStart { board, clause } => {
                    stats.chaos_events += 1;
                    chaos_stats.clauses[clause as usize].events += 1;
                    telemetry.on_chaos(
                        time_s,
                        "throttle start",
                        &chaos_stats.clauses[clause as usize].label,
                        board as usize,
                    );
                    let bs = &mut state.boards[board as usize];
                    bs.throttles.push((clause, chaos.factors[clause as usize]));
                    bs.recompute_slowdown();
                    // Throttle windows apply whether or not the board
                    // is up — a board going down mid-throttle comes
                    // back at whatever speed its open windows dictate.
                    chaos_stats.max_slowdown = chaos_stats.max_slowdown.max(bs.slowdown);
                }

                EventKind::ThrottleEnd { board, clause } => {
                    stats.chaos_events += 1;
                    chaos_stats.clauses[clause as usize].events += 1;
                    telemetry.on_chaos(
                        time_s,
                        "throttle end",
                        &chaos_stats.clauses[clause as usize].label,
                        board as usize,
                    );
                    let bs = &mut state.boards[board as usize];
                    bs.throttles.retain(|&(c, _)| c != clause);
                    bs.recompute_slowdown();
                }

                EventKind::BlackoutStart { board, clause } => {
                    stats.chaos_events += 1;
                    chaos_stats.clauses[clause as usize].events += 1;
                    telemetry.on_chaos(
                        time_s,
                        "blackout start",
                        &chaos_stats.clauses[clause as usize].label,
                        board as usize,
                    );
                    state.add_blackout(board as usize);
                }

                EventKind::BlackoutEnd { board, clause } => {
                    stats.chaos_events += 1;
                    chaos_stats.clauses[clause as usize].events += 1;
                    telemetry.on_chaos(
                        time_s,
                        "blackout end",
                        &chaos_stats.clauses[clause as usize].label,
                        board as usize,
                    );
                    state.remove_blackout(board as usize);
                }

                EventKind::Completion { .. } => {
                    unreachable!("completions live on shard queues, not the control queue")
                }
            }
        }

        telemetry.lap_total(wall_run);
        stats.messages = shards.messages;
        stats.advances = shards.advances;
        stats.par_advances = shards.par_advances;
        assert_eq!(open, 0, "kernel exited with open jobs");
        assert_eq!(
            stats.arrivals,
            stats.completions + stats.dropped,
            "event accounting out of balance: {stats:?}"
        );
        assert_eq!(
            stats.dropped,
            stats.dropped_no_board + stats.dropped_migration_cap,
            "per-reason drop accounting out of balance: {stats:?}"
        );
        debug_assert!(state
            .boards
            .iter()
            .all(|s| s.queue_is_empty() && s.in_flight.is_none()));

        outcomes.sort_by_key(|o| o.id);
        dropped.sort_by_key(|d| d.id);
        chaos_stats.throttled_starts = state.boards.iter().map(|s| s.throttled_starts).sum();
        let mut metrics = FleetMetrics::from_outcomes(
            &outcomes,
            state.boards.iter().map(|s| s.busy_s),
            train_energy_j,
        );
        if let Some(fb) = &feedback {
            metrics.feedback = fb.stats;
        }
        FleetOutcome {
            metrics,
            outcomes,
            cache: cache.stats,
            guard_bypasses,
            train_time_s,
            train_energy_j,
            backend: self.params.backend.name(),
            calibrations: self
                .replay_exec
                .as_ref()
                .map(|r| r.stats().calibrations)
                .unwrap_or(0),
            dispatch: scenario.dispatch.name(),
            dropped,
            kernel: stats,
            chaos: chaos_stats,
        }
    }

    // ---- admission ----------------------------------------------------------

    /// Refill `scratch` with per-board estimates for `job` (and the
    /// uncorrected per-architecture profiled walls); returns the
    /// resolved SLO. Profiled values are computed once per
    /// *architecture* and fanned out to boards, so an arrival costs
    /// O(architectures) profile lookups however many boards the
    /// cluster has. Read-only on the cache (peeks, no accounting).
    #[allow(clippy::too_many_arguments)]
    fn estimates_into(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &PolicyCache,
        policy: PolicyMode,
        job: &JobSpec,
        module: &Module,
        arches: &ArchMap,
        feedback: Option<&ServiceFeedback>,
        scratch: &mut EstScratch,
    ) -> f64 {
        let slo_s = job.slo_tightness * self.best_cold_wall(exec, profiles, &job.workload, module);
        debug_assert_eq!(scratch.base_s.len(), arches.len());
        for a in 0..arches.len() {
            let arch = arches.keys[a];
            let (wall, energy, warm) = self.estimate_on(
                exec,
                profiles,
                cache,
                policy,
                job,
                module,
                arches.representative[a],
            );
            scratch.base_s[a] = wall;
            scratch.service_s[a] = corrected(wall, feedback, job, arch);
            scratch.energy_j[a] = energy;
            scratch.warm[a] = warm;
        }
        for b in 0..arches.of_board.len() {
            let a = arches.of_board[b];
            scratch.est.service_s[b] = scratch.service_s[a];
            scratch.est.energy_j[b] = scratch.energy_j[a];
            scratch.est.warm[b] = scratch.warm[a];
        }
        slo_s
    }

    /// Arrival-path policy resolution: full cache lookup (training on
    /// miss, warm refresh on staleness — asynchronous, off the serving
    /// path, so the triggering job runs its stock binary), then the
    /// admission latency guard. Returns the schedule to run and the
    /// guarded *uncorrected* profiled service estimate on board `b`
    /// (the feedback correction, if any, is applied by the caller).
    #[allow(clippy::too_many_arguments)]
    fn resolve_with_training(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &mut PolicyCache,
        policy: PolicyMode,
        job: &JobSpec,
        module: &Module,
        b: usize,
        cold_est: f64,
        train_time_s: &mut f64,
        train_energy_j: &mut f64,
        guard_bypasses: &mut u64,
    ) -> (Option<(astro_core::schedule::StaticSchedule, u32)>, f64) {
        let schedule = match policy {
            PolicyMode::Cold => None,
            PolicyMode::Warm => {
                let arch = self.cluster.arch_key(b);
                match cache.lookup(job.taxon, arch) {
                    CacheDecision::Hit(s, v) => Some((s, v)),
                    CacheDecision::Stale(snap) => {
                        let (trained, t, e) =
                            self.train(job, b, Some(&snap), self.params.refresh_episodes);
                        *train_time_s += t;
                        *train_energy_j += e;
                        let snapshot = trained.hooks.agent.snapshot();
                        cache.refresh(job.taxon, arch, trained.static_schedule, snapshot);
                        None
                    }
                    CacheDecision::Miss => {
                        let (trained, t, e) = self.train(job, b, None, self.params.train.episodes);
                        *train_time_s += t;
                        *train_energy_j += e;
                        let snapshot = trained.hooks.agent.snapshot();
                        cache.insert(job.taxon, arch, trained.static_schedule, snapshot);
                        None
                    }
                }
            }
        };
        self.apply_guard(
            exec,
            profiles,
            job,
            module,
            b,
            schedule,
            cold_est,
            guard_bypasses,
        )
    }

    /// Admission latency guard: when the schedule's profiled service on
    /// board `b` regresses past the guard factor, the job runs its
    /// stock binary instead.
    #[allow(clippy::too_many_arguments)]
    fn apply_guard(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        job: &JobSpec,
        module: &Module,
        b: usize,
        schedule: Option<(astro_core::schedule::StaticSchedule, u32)>,
        cold_est: f64,
        guard_bypasses: &mut u64,
    ) -> (Option<(astro_core::schedule::StaticSchedule, u32)>, f64) {
        match schedule {
            None => (None, cold_est),
            Some((st, v)) => {
                // The verdict is a pure function of two memoised
                // profiles, so it is memoised per (workload, arch,
                // version) — the bypass counter still ticks per
                // arrival, exactly as the recomputing path did.
                let arch = self.cluster.arch_key(b);
                let key = (crate::sim::sk(job.workload.name), crate::sim::sk(arch), v);
                let (admit, wall) = match profiles.guard.get(&key) {
                    Some(&verdict) => verdict,
                    None => {
                        let (cold_wall, _) = self.profile(
                            exec,
                            profiles,
                            &job.workload,
                            module,
                            b,
                            ProfileTable::COLD,
                            None,
                        );
                        let (warm_wall, _) = self.profile(
                            exec,
                            profiles,
                            &job.workload,
                            module,
                            b,
                            v as u64,
                            Some(st),
                        );
                        let verdict = if warm_wall > cold_wall * self.params.latency_guard {
                            (false, cold_wall)
                        } else {
                            (true, warm_wall)
                        };
                        profiles.guard.insert(key, verdict);
                        verdict
                    }
                };
                if admit {
                    (Some((st, v)), wall)
                } else {
                    *guard_bypasses += 1;
                    (None, wall)
                }
            }
        }
    }

    // ---- migration ----------------------------------------------------------

    /// Re-resolve a migrating job's schedule for the target board
    /// without training (there is no time to train on the migration
    /// path): a fresh cache line for the target architecture applies
    /// (guard permitting), anything else runs the stock binary.
    /// `misprofile` is the chaos estimate-corruption factor active at
    /// migration time (1.0 when none): it scales the profiled estimate
    /// the same way it scaled the arrival-time estimate, so feedback
    /// sees a consistently corrupted signal it can learn to repair.
    #[allow(clippy::too_many_arguments)]
    fn migrate_onto(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &PolicyCache,
        scenario: &Scenario,
        mut qj: QueuedJob,
        target: usize,
        guard_bypasses: &mut u64,
        modules: &BTreeMap<&'static str, Module>,
        feedback: Option<&ServiceFeedback>,
        misprofile: f64,
    ) -> QueuedJob {
        let arch = self.cluster.arch_key(target);
        let module = &modules[qj.job.workload.name];
        let schedule = if scenario.policy == PolicyMode::Warm && qj.sched_arch == arch {
            qj.schedule
        } else if scenario.policy == PolicyMode::Warm && cache.is_warm(qj.job.taxon, arch) {
            let e = cache.peek(qj.job.taxon, arch).expect("warm entry exists");
            Some((e.schedule, e.version))
        } else {
            None
        };
        let (cold_wall, _) = self.profile(
            exec,
            profiles,
            &qj.job.workload,
            module,
            target,
            ProfileTable::COLD,
            None,
        );
        let (schedule, profiled_s) = self.apply_guard(
            exec,
            profiles,
            &qj.job,
            module,
            target,
            schedule,
            cold_wall,
            guard_bypasses,
        );
        qj.schedule = schedule;
        qj.sched_arch = arch;
        let profiled_s = profiled_s * misprofile;
        qj.profiled_s = profiled_s;
        qj.est_service_s = corrected(profiled_s, feedback, &qj.job, arch);
        qj.penalty_s += scenario.migration_cost_s;
        qj.migrations += 1;
        qj
    }

    /// Churn redistribution: place an orphaned queued job through the
    /// dispatcher (over the boards still up), paying the migration cost.
    #[allow(clippy::too_many_arguments)]
    fn redispatch(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &mut PolicyCache,
        scenario: &Scenario,
        dispatcher: &mut dyn Dispatcher,
        state: &mut ClusterState,
        shards: &mut ShardSet,
        progs: &mut ProgramSet,
        modules: &BTreeMap<&'static str, Module>,
        arches: &ArchMap,
        feedback: Option<&ServiceFeedback>,
        chaos: &CompiledChaos,
        qj: QueuedJob,
        guard_bypasses: &mut u64,
        scratch: &mut EstScratch,
        chaos_stats: &mut ChaosStats,
    ) -> usize {
        self.estimates_into(
            exec,
            profiles,
            cache,
            scenario.policy,
            &qj.job,
            &modules[qj.job.workload.name],
            arches,
            feedback,
            scratch,
        );
        // A redispatch is a fresh admission: an active misprofile
        // window corrupts its estimates exactly like an arrival's.
        let mf = chaos.misprofile_factor(qj.job.class(), state.now_s, Some(chaos_stats));
        if mf != 1.0 {
            for s in &mut scratch.est.service_s {
                *s *= mf;
            }
        }
        let b = dispatcher.pick(state, &qj.job, &scratch.est);
        assert!(
            state.placeable(b),
            "dispatcher picked down or blacked-out board {b}"
        );
        let mut qj = self.migrate_onto(
            exec,
            profiles,
            cache,
            scenario,
            qj,
            b,
            guard_bypasses,
            modules,
            feedback,
            mf,
        );
        // Churn redistributions are capped by their own counter —
        // preemptive migrations (max_migrations) do not consume it.
        qj.redispatches += 1;
        let module = &modules[qj.job.workload.name];
        ensure_static_build(progs, module, &qj.job, &qj.schedule, arches, b);
        // Oracle accumulators track redistributed work too (the oracle
        // still books what it re-plans, it just never observes reality).
        let acc = &mut state.boards[b].oracle_busy_until_s;
        *acc = acc.max(state.now_s) + qj.est_total_s();
        state.boards[b].dispatched += 1;
        shards.deliver(
            &mut state.boards,
            ShardMsg::Enqueue { board: b, job: qj },
            state.now_s,
            &AdvanceCtx {
                exec,
                progs,
                modules,
                specs: &self.cluster.boards,
                collect_observations: feedback.is_some(),
            },
        );
        state.refresh_dispatch_index(b);
        b
    }

    /// Preemptive redispatch scan: walk every live board's queue in
    /// order, predict each queued job's finish from observable state,
    /// and migrate predicted SLO-missers to a board predicted to *meet*
    /// the deadline (never a sideways bounce — a migration must turn a
    /// predicted miss into a predicted hit).
    #[allow(clippy::too_many_arguments)]
    fn preempt_scan(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &mut PolicyCache,
        scenario: &Scenario,
        state: &mut ClusterState,
        shards: &mut ShardSet,
        progs: &mut ProgramSet,
        modules: &BTreeMap<&'static str, Module>,
        arches: &ArchMap,
        feedback: Option<&ServiceFeedback>,
        chaos: &CompiledChaos,
        stats: &mut KernelStats,
        guard_bypasses: &mut u64,
    ) {
        let n_boards = self.cluster.len();
        for b in 0..n_boards {
            if !state.up(b) || state.boards[b].queue_is_empty() {
                continue;
            }
            let mut t_avail = match &state.boards[b].in_flight {
                Some(f) => f.est_finish_s.max(state.now_s),
                None => state.now_s,
            };
            let mut kept = std::collections::VecDeque::new();
            while let Some(qj) = state.boards[b].pop_next() {
                let pred_finish = t_avail + qj.est_total_s();
                let deadline = qj.job.arrival_s + qj.slo_s;
                // Any active misprofile window corrupts the scan's
                // predictions too (the scan sees the same lie arrivals
                // do); not charged to clause stats — predictions are
                // not admissions.
                let mf = chaos.misprofile_factor(qj.job.class(), state.now_s, None);
                let target = if pred_finish > deadline && qj.migrations < scenario.max_migrations {
                    // Best alternative: lowest predicted finish among
                    // the other placeable boards, by observable
                    // estimates.
                    let module = &modules[qj.job.workload.name];
                    let mut best: Option<(f64, usize)> = None;
                    for b2 in state.placeable_boards().filter(|&b2| b2 != b) {
                        let (wall, _, _) = self.estimate_on(
                            exec,
                            profiles,
                            cache,
                            scenario.policy,
                            &qj.job,
                            module,
                            b2,
                        );
                        let wall = corrected(
                            wall * mf,
                            feedback,
                            &qj.job,
                            arches.keys[arches.of_board[b2]],
                        );
                        // The job keeps its already-accumulated penalty
                        // on the target board, so the prediction must
                        // carry it — or a re-migration could be
                        // approved that is itself predicted to miss.
                        let alt = state.online_busy_until_s(b2).max(state.now_s)
                            + qj.penalty_s
                            + scenario.migration_cost_s
                            + wall;
                        if best.map(|(t, _)| alt < t).unwrap_or(true) {
                            best = Some((alt, b2));
                        }
                    }
                    best.filter(|&(alt_finish, _)| alt_finish <= deadline)
                } else {
                    None
                };
                match target {
                    Some((_, b2)) => {
                        let qj2 = self.migrate_onto(
                            exec,
                            profiles,
                            cache,
                            scenario,
                            qj,
                            b2,
                            guard_bypasses,
                            modules,
                            feedback,
                            mf,
                        );
                        let module = &modules[qj2.job.workload.name];
                        ensure_static_build(progs, module, &qj2.job, &qj2.schedule, arches, b2);
                        state.boards[b2].dispatched += 1;
                        shards.deliver(
                            &mut state.boards,
                            ShardMsg::Enqueue {
                                board: b2,
                                job: qj2,
                            },
                            state.now_s,
                            &AdvanceCtx {
                                exec,
                                progs,
                                modules,
                                specs: &self.cluster.boards,
                                collect_observations: feedback.is_some(),
                            },
                        );
                        state.refresh_dispatch_index(b2);
                        stats.migrations += 1;
                    }
                    None => {
                        t_avail = pred_finish;
                        kept.push_back(qj);
                    }
                }
            }
            state.boards[b].set_queued(kept);
            state.refresh_dispatch_index(b);
        }
    }

    /// Observable (wall, energy) estimate of `job` on board `b` under
    /// the schedule it would run there (fresh cache line or stock
    /// binary), *uncorrected* — callers fold the feedback correction
    /// in via [`corrected`]. The single source of the policy-estimate
    /// rule: both arrival-time dispatch estimates and preemption-scan
    /// predictions go through here, so they can never disagree.
    #[allow(clippy::too_many_arguments)]
    fn estimate_on(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &PolicyCache,
        policy: PolicyMode,
        job: &JobSpec,
        module: &Module,
        b: usize,
    ) -> (f64, f64, bool) {
        let arch = self.cluster.arch_key(b);
        // One probe answers both "is it warm?" and "which schedule?" —
        // the estimate loop runs this per architecture per arrival.
        let warm = match policy {
            PolicyMode::Warm => cache.warm_peek(job.taxon, arch),
            PolicyMode::Cold => None,
        };
        let (wall, energy) = match warm {
            Some(e) => self.profile(
                exec,
                profiles,
                &job.workload,
                module,
                b,
                e.version as u64,
                Some(e.schedule),
            ),
            None => self.profile(
                exec,
                profiles,
                &job.workload,
                module,
                b,
                ProfileTable::COLD,
                None,
            ),
        };
        (wall, energy, warm.is_some())
    }
}

/// Apply the feedback correction to an uncorrected estimate (identity
/// when the layer is disabled — bit-for-bit, not just numerically).
fn corrected(
    wall_s: f64,
    feedback: Option<&ServiceFeedback>,
    job: &JobSpec,
    arch: &'static str,
) -> f64 {
    match feedback {
        Some(fb) => wall_s * fb.correction(job.taxon, arch),
        None => wall_s,
    }
}

/// Make sure the static build a queued job will run is compiled into
/// the program memo before the job reaches a shard (shards only read).
fn ensure_static_build(
    progs: &mut ProgramSet,
    module: &Module,
    job: &JobSpec,
    schedule: &Option<(astro_core::schedule::StaticSchedule, u32)>,
    arches: &ArchMap,
    b: usize,
) {
    if let Some((st, version)) = schedule {
        let key = (
            crate::sim::sk(job.workload.name),
            crate::sim::sk(arches.keys[arches.of_board[b]]),
            *version,
        );
        progs
            .warm
            .entry(key)
            .or_insert_with(|| compile(&build_static(module, st)).expect("static build compiles"));
    }
}

/// Fold one barrier merge into the run accounting: completions become
/// events, outcomes accumulate, and feedback observations are applied
/// in (completion time, job id) order so the learned state is
/// identical for every shard count.
///
/// The flight recorder observes the merge here too — and *only* here
/// for completion-derived telemetry: its records are sorted by the same
/// (finish time, id) key before the hook fires, so the recorded stream
/// is pinned for every shard count, and successive advance windows
/// `[from_s, to_s)` are disjoint and increasing, making the whole trace
/// monotone in sim time.
#[allow(clippy::too_many_arguments)]
fn fold_delta(
    delta: AdvanceDelta,
    state: &mut ClusterState,
    stats: &mut KernelStats,
    open: &mut usize,
    outcomes: &mut Vec<JobOutcome>,
    feedback: &mut Option<ServiceFeedback>,
    telemetry: &mut FlightRecorder,
    from_s: f64,
    to_s: f64,
    parallel: bool,
) {
    // Shard threads mutate board state (completions pop queues and
    // start successors) outside the control plane's view; the boards
    // they touched are exactly the outcome boards, so the dispatch
    // index is repaired here, at the barrier, before any decision
    // reads it.
    for o in &delta.outcomes {
        state.refresh_dispatch_index(o.board);
    }
    stats.events += delta.completions;
    stats.completions += delta.completions;
    *open -= delta.completions as usize;
    if telemetry.enabled() && !delta.outcomes.is_empty() {
        let mut recs: Vec<CompletionRecord> = delta
            .outcomes
            .iter()
            .map(|o| CompletionRecord {
                finish_s: o.finish_s,
                latency_s: o.latency_s(),
                slo_s: o.slo_s,
                id: o.id,
                board: o.board,
                workload: o.workload,
            })
            .collect();
        recs.sort_by(|a, b| a.finish_s.total_cmp(&b.finish_s).then(a.id.cmp(&b.id)));
        telemetry.on_window(from_s, to_s, parallel, &recs);
    }
    outcomes.extend(delta.outcomes);
    if let Some(fb) = feedback {
        let mut obs = delta.observations;
        obs.sort_by(|x, y| x.finish_s.total_cmp(&y.finish_s).then(x.id.cmp(&y.id)));
        for o in obs {
            fb.observe(o.taxon, o.arch, o.profiled_s, o.observed_s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_orders_by_time_then_push() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::MonitorTick);
        q.push(1.0, EventKind::Arrival(0));
        q.push(1.0, EventKind::Completion { board: 3 });
        q.push(0.5, EventKind::BoardDown(1));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().unwrap().kind, EventKind::BoardDown(1));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        // Equal timestamps pop in push order.
        assert_eq!(a.kind, EventKind::Arrival(0));
        assert_eq!(b.kind, EventKind::Completion { board: 3 });
        assert!(a.seq < b.seq);
        assert_eq!(q.pop().unwrap().kind, EventKind::MonitorTick);
        assert!(q.pop().is_none());
        assert_eq!(q.pushed, 4);
        assert_eq!(q.popped, 4);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_is_strict() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Completion { board: 0 });
        q.push(2.0, EventKind::Completion { board: 1 });
        assert!(q.pop_before(1.0).is_none(), "strictly-before must exclude");
        assert_eq!(
            q.pop_before(1.5).unwrap().kind,
            EventKind::Completion { board: 0 }
        );
        assert!(q.pop_before(1.5).is_none());
        assert_eq!(q.peek().unwrap().time_s, 2.0);
        assert_eq!(
            q.pop_before(f64::INFINITY).unwrap().kind,
            EventKind::Completion { board: 1 }
        );
        assert!(q.is_empty());
    }

    #[test]
    fn scenario_builders_compose() {
        let s = Scenario::online(PolicyMode::Warm)
            .with_churn(vec![ChurnEvent {
                time_s: 1.0,
                board: 0,
                up: false,
            }])
            .with_preemption(0.5, 0.01, 3);
        assert_eq!(s.dispatch, DispatchMode::Online);
        assert!(s.preemption);
        assert_eq!(s.max_migrations, 3);
        assert_eq!(s.max_redispatches, u32::MAX);
        assert!(!s.feedback);
        assert_eq!(s.churn.len(), 1);
        assert_eq!(s.label(), "warm/online");
        let o = Scenario::oracle(PolicyMode::Cold);
        assert_eq!(o.dispatch, DispatchMode::Oracle);
        assert!(!o.preemption);
        assert_eq!(o.label(), "cold/oracle");
        let f = Scenario::online(PolicyMode::Warm)
            .with_feedback()
            .with_redispatch_cap(3);
        assert!(f.feedback);
        assert_eq!(f.max_redispatches, 3);
        assert_eq!(f.label(), "warm/online+fb");
    }
}
