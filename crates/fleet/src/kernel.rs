//! The discrete-event fleet kernel: a virtual-clock event queue driving
//! online dispatch, preemptive redispatch and board churn.
//!
//! Earlier revisions planned every placement in one sequential batch
//! pass and only then executed boards. The kernel replaces that with a
//! single event loop over a monotone virtual clock:
//!
//! * **Arrival** — the dispatcher is invoked *now*, against the live
//!   [`ClusterState`] (queue depths, in-flight taxa, liveness,
//!   backlog per [`DispatchMode`]); the job's policy is resolved
//!   against the shared cache and the admission latency guard, then the
//!   job is queued (or started, if its board is idle).
//! * **Completion** — the board's in-flight outcome is recorded and the
//!   next queued job starts; its true finish time comes from one
//!   [`Executor`] run, so the replay
//!   backend scales the loop to hundreds of thousands of jobs.
//! * **MonitorTick** — with preemption enabled, queued jobs predicted
//!   to miss their SLO are migrated to a board predicted to meet it,
//!   paying [`Scenario::migration_cost_s`].
//! * **BoardDown / BoardUp** — churn: a departing board drains its
//!   in-flight job but its queue is redistributed through the
//!   dispatcher (or dropped when no board is up); a returning board
//!   starts attracting arrivals again.
//!
//! Everything stays seed-deterministic: events at equal timestamps pop
//! in push order, and every service time is a pure function of the
//! request. [`DispatchMode::Oracle`] reproduces the batch planner's
//! placements through this same loop, so historical comparisons stay
//! meaningful; [`DispatchMode::Online`] is the live-feedback upgrade.

use crate::cache::{CacheDecision, PolicyCache};
use crate::dispatch::{Dispatcher, JobEstimates};
use crate::job::{JobOutcome, JobSpec};
use crate::metrics::{FleetMetrics, FleetOutcome};
use crate::sim::{FleetSim, PolicyMode, ProfileTable};
use crate::state::{ClusterState, DispatchMode, InFlight, QueuedJob};
use astro_core::pipeline::build_static;
use astro_exec::executor::{ExecPolicy, ExecRequest, Executor, MachineExecutor};
use astro_exec::program::{compile, CompiledProgram};
use astro_ir::Module;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// What happens at an event's timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Job `jobs[i]` enters the system.
    Arrival(u32),
    /// The board's in-flight job finishes.
    Completion {
        /// Board index.
        board: u32,
    },
    /// Periodic observation point (preemption scans run here).
    MonitorTick,
    /// Board churn: the board stops accepting work and its queue is
    /// redistributed (the in-flight job drains).
    BoardDown(u32),
    /// Board churn: the board is available again.
    BoardUp(u32),
}

/// One scheduled event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Virtual timestamp, seconds.
    pub time_s: f64,
    /// Push order — the deterministic tie-breaker at equal timestamps.
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time_s.total_cmp(&other.time_s) == Ordering::Equal && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Min-first: earliest timestamp, then earliest push.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_s
            .total_cmp(&self.time_s)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The kernel's pending-event queue: a binary heap popping the earliest
/// timestamp first, ties broken by push order so the loop is
/// deterministic whatever the float values.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    /// Events ever pushed.
    pub pushed: u64,
    /// Events ever popped.
    pub popped: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` at `time_s`.
    pub fn push(&mut self, time_s: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Event { time_s, seq, kind });
    }

    /// Earliest event, earliest push first at equal times.
    pub fn pop(&mut self) -> Option<Event> {
        let ev = self.heap.pop();
        if ev.is_some() {
            self.popped += 1;
        }
        ev
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is anything pending?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One board leaving or (re)joining the fleet mid-run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnEvent {
    /// When, seconds.
    pub time_s: f64,
    /// Which board.
    pub board: usize,
    /// `true` = joins, `false` = leaves.
    pub up: bool,
}

/// What one kernel run does beyond dispatching: mode, churn schedule,
/// preemptive redispatch.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Cold stock binaries vs warm cached Astro policies.
    pub policy: PolicyMode,
    /// Which backlog estimate dispatchers observe.
    pub dispatch: DispatchMode,
    /// Board up/down schedule (empty = stable fleet).
    pub churn: Vec<ChurnEvent>,
    /// Migrate queued jobs predicted to miss their SLO at monitor ticks.
    /// Requires [`DispatchMode::Online`] and a positive tick interval.
    pub preemption: bool,
    /// Monitor tick period, seconds (`0` = no ticks).
    pub monitor_interval_s: f64,
    /// Service-time penalty each migration/redistribution pays (state
    /// transfer), seconds.
    pub migration_cost_s: f64,
    /// Preemptive migrations allowed per job (churn redistribution is
    /// not capped — a down board's queue must go somewhere).
    pub max_migrations: u32,
}

impl Scenario {
    /// Batch-equivalent semantics: oracle estimates, stable fleet, no
    /// preemption — the configuration that reproduces the three-stage
    /// planner's placements through the event kernel.
    pub fn oracle(policy: PolicyMode) -> Self {
        Scenario {
            policy,
            dispatch: DispatchMode::Oracle,
            churn: Vec::new(),
            preemption: false,
            monitor_interval_s: 0.0,
            migration_cost_s: 0.0,
            max_migrations: 2,
        }
    }

    /// Live dispatch against observable cluster state.
    pub fn online(policy: PolicyMode) -> Self {
        Scenario {
            dispatch: DispatchMode::Online,
            ..Scenario::oracle(policy)
        }
    }

    /// Add a board churn schedule.
    pub fn with_churn(mut self, churn: Vec<ChurnEvent>) -> Self {
        self.churn = churn;
        self
    }

    /// Enable deadline-driven preemptive redispatch: scan every
    /// `interval_s`, migrate at cost `cost_s`, at most `max_migrations`
    /// times per job.
    pub fn with_preemption(mut self, interval_s: f64, cost_s: f64, max_migrations: u32) -> Self {
        assert!(
            interval_s > 0.0,
            "preemption needs a positive tick interval"
        );
        self.preemption = true;
        self.monitor_interval_s = interval_s;
        self.migration_cost_s = cost_s;
        self.max_migrations = max_migrations;
        self
    }

    /// Set the migration cost without enabling preemption (churn
    /// redistribution pays it too).
    pub fn with_migration_cost(mut self, cost_s: f64) -> Self {
        self.migration_cost_s = cost_s;
        self
    }

    /// `policy/dispatch` label for reports.
    pub fn label(&self) -> String {
        format!("{}/{}", self.policy.name(), self.dispatch.name())
    }
}

/// Event accounting for one kernel run. Invariant at exit:
/// `arrivals == completions + dropped`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Events processed.
    pub events: u64,
    /// Arrival events.
    pub arrivals: u64,
    /// Completion events.
    pub completions: u64,
    /// Jobs dropped because no board was up to take them.
    pub dropped: u64,
    /// Preemptive (SLO-driven) migrations.
    pub migrations: u64,
    /// Churn-driven queue redistributions.
    pub redistributions: u64,
    /// Monitor ticks processed.
    pub ticks: u64,
    /// Boards taken down.
    pub board_downs: u64,
    /// Boards brought (back) up.
    pub board_ups: u64,
}

/// Key for the compiled static-binary memo: (workload, architecture,
/// policy version). A workload maps to exactly one taxon, and versions
/// are per (taxon, architecture), so the key never aliases schedules.
type WarmKey = (&'static str, &'static str, u32);

impl FleetSim<'_> {
    /// The event loop. Public API is [`FleetSim::run`].
    pub(crate) fn run_kernel(
        &self,
        jobs: &[JobSpec],
        dispatcher: &mut dyn Dispatcher,
        cache: &mut PolicyCache,
        scenario: &Scenario,
    ) -> FleetOutcome {
        let n_boards = self.cluster.len();
        assert!(
            !scenario.preemption
                || (scenario.dispatch == DispatchMode::Online && scenario.monitor_interval_s > 0.0),
            "preemption requires online dispatch and a positive monitor interval"
        );
        for ev in &scenario.churn {
            assert!(
                ev.board < n_boards,
                "churn event names board {} of {n_boards}",
                ev.board
            );
            assert!(ev.time_s >= 0.0, "churn events cannot predate the run");
        }

        // The execution backend every profile and job run goes through.
        let machine_exec = MachineExecutor {
            params: self.params.machine,
        };
        let exec: &dyn Executor = match &self.replay_exec {
            Some(r) => r,
            None => &machine_exec,
        };

        // Source modules, one per distinct workload in the stream.
        let mut modules: BTreeMap<&'static str, Module> = BTreeMap::new();
        for job in jobs {
            modules
                .entry(job.workload.name)
                .or_insert_with(|| (job.workload.build)(self.params.size));
        }

        // Calibration-then-replay: record every (workload, architecture)
        // trace set up front, in deterministic order (earlier runs of
        // this simulator are cache hits).
        if let Some(replay) = &self.replay_exec {
            for key in self.cluster.arch_keys() {
                let board = self.cluster.representative_board(key);
                for (name, module) in &modules {
                    replay.calibrate(name, module, board);
                }
            }
        }

        let mut profiles = ProfileTable::new();
        let mut state = ClusterState::new(self.cluster, scenario.dispatch);
        let mut queue = EventQueue::new();
        let mut stats = KernelStats::default();
        let mut train_time_s = 0.0;
        let mut train_energy_j = 0.0;
        let mut guard_bypasses = 0u64;
        let mut cold_progs: BTreeMap<&'static str, CompiledProgram> = BTreeMap::new();
        let mut warm_progs: BTreeMap<WarmKey, CompiledProgram> = BTreeMap::new();
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
        let mut dropped: Vec<u32> = Vec::new();

        // Seed the queue: churn first (so a down-at-t beats an arrival
        // at the same t), then arrivals, then the first monitor tick.
        for ev in &scenario.churn {
            queue.push(
                ev.time_s,
                if ev.up {
                    EventKind::BoardUp(ev.board as u32)
                } else {
                    EventKind::BoardDown(ev.board as u32)
                },
            );
        }
        for (i, job) in jobs.iter().enumerate() {
            queue.push(job.arrival_s, EventKind::Arrival(i as u32));
        }
        if scenario.monitor_interval_s > 0.0 {
            queue.push(scenario.monitor_interval_s, EventKind::MonitorTick);
        }

        // Jobs not yet completed or dropped.
        let mut open = jobs.len();

        while let Some(ev) = queue.pop() {
            debug_assert!(
                ev.time_s >= state.now_s - 1e-9,
                "virtual clock ran backwards: {} -> {}",
                state.now_s,
                ev.time_s
            );
            state.now_s = state.now_s.max(ev.time_s);
            stats.events += 1;

            match ev.kind {
                EventKind::Arrival(i) => {
                    stats.arrivals += 1;
                    let job = jobs[i as usize];
                    if !state.any_up() {
                        dropped.push(job.id);
                        stats.dropped += 1;
                        open -= 1;
                        continue;
                    }
                    let (est, slo_s) =
                        self.estimates(exec, &mut profiles, cache, scenario.policy, &job, &modules);
                    let b = dispatcher.pick(&state, &job, &est);
                    assert!(b < n_boards, "dispatcher picked board {b} of {n_boards}");
                    assert!(state.up(b), "dispatcher picked down board {b}");

                    // Policy resolution (training on miss/staleness) and
                    // admission latency guard.
                    let module = &modules[job.workload.name];
                    let (schedule, svc_est) = self.resolve_with_training(
                        exec,
                        &mut profiles,
                        cache,
                        scenario.policy,
                        &job,
                        module,
                        b,
                        est.service_s[b],
                        &mut train_time_s,
                        &mut train_energy_j,
                        &mut guard_bypasses,
                    );

                    // Oracle accumulator: batch stage-1 semantics.
                    let acc = &mut state.boards[b].oracle_busy_until_s;
                    *acc = acc.max(job.arrival_s) + svc_est;
                    state.boards[b].dispatched += 1;

                    let qj = QueuedJob {
                        job,
                        slo_s,
                        schedule,
                        sched_arch: self.cluster.arch_key(b),
                        est_service_s: svc_est,
                        penalty_s: 0.0,
                        migrations: 0,
                    };
                    self.enqueue_or_start(
                        exec,
                        &mut state,
                        &mut queue,
                        &mut cold_progs,
                        &mut warm_progs,
                        &modules,
                        b,
                        qj,
                    );
                }

                EventKind::Completion { board } => {
                    stats.completions += 1;
                    open -= 1;
                    let b = board as usize;
                    let fin = state.boards[b]
                        .in_flight
                        .take()
                        .expect("completion event for an idle board");
                    state.boards[b].completed += 1;
                    outcomes.push(fin.outcome);
                    if let Some(next) = state.boards[b].queue.pop_front() {
                        self.start_job(
                            exec,
                            &mut state,
                            &mut queue,
                            &mut cold_progs,
                            &mut warm_progs,
                            &modules,
                            b,
                            next,
                        );
                    }
                }

                EventKind::MonitorTick => {
                    stats.ticks += 1;
                    if scenario.preemption {
                        self.preempt_scan(
                            exec,
                            &mut profiles,
                            cache,
                            scenario,
                            &mut state,
                            &mut queue,
                            &mut cold_progs,
                            &mut warm_progs,
                            &modules,
                            &mut stats,
                            &mut guard_bypasses,
                        );
                    }
                    if open > 0 {
                        queue.push(
                            state.now_s + scenario.monitor_interval_s,
                            EventKind::MonitorTick,
                        );
                    }
                }

                EventKind::BoardDown(b) => {
                    stats.board_downs += 1;
                    let b = b as usize;
                    state.boards[b].up = false;
                    // The in-flight job drains; queued work is
                    // redistributed (or dropped when nowhere is up).
                    let orphans: Vec<QueuedJob> = state.boards[b].queue.drain(..).collect();
                    for qj in orphans {
                        if !state.any_up() {
                            dropped.push(qj.job.id);
                            stats.dropped += 1;
                            open -= 1;
                            continue;
                        }
                        stats.redistributions += 1;
                        self.redispatch(
                            exec,
                            &mut profiles,
                            cache,
                            scenario,
                            dispatcher,
                            &mut state,
                            &mut queue,
                            &mut cold_progs,
                            &mut warm_progs,
                            &modules,
                            qj,
                            &mut guard_bypasses,
                        );
                    }
                }

                EventKind::BoardUp(b) => {
                    stats.board_ups += 1;
                    state.boards[b as usize].up = true;
                }
            }
        }

        assert_eq!(open, 0, "kernel exited with open jobs");
        assert_eq!(
            stats.arrivals,
            stats.completions + stats.dropped,
            "event accounting out of balance: {stats:?}"
        );
        debug_assert!(state
            .boards
            .iter()
            .all(|s| s.queue.is_empty() && s.in_flight.is_none()));

        outcomes.sort_by_key(|o| o.id);
        dropped.sort_unstable();
        let busy: Vec<f64> = state.boards.iter().map(|s| s.busy_s).collect();
        let metrics = FleetMetrics::from_outcomes(&outcomes, &busy, train_energy_j);
        FleetOutcome {
            metrics,
            outcomes,
            cache: cache.stats,
            guard_bypasses,
            train_time_s,
            train_energy_j,
            backend: self.params.backend.name(),
            calibrations: self
                .replay_exec
                .as_ref()
                .map(|r| r.stats().calibrations)
                .unwrap_or(0),
            dispatch: scenario.dispatch.name(),
            dropped,
            kernel: stats,
        }
    }

    // ---- admission ----------------------------------------------------------

    /// Per-board profiled estimates for `job` plus its resolved SLO.
    /// Read-only on the cache (peeks, no accounting).
    fn estimates(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &PolicyCache,
        policy: PolicyMode,
        job: &JobSpec,
        modules: &BTreeMap<&'static str, Module>,
    ) -> (JobEstimates, f64) {
        let n_boards = self.cluster.len();
        let module = &modules[job.workload.name];
        let slo_s = job.slo_tightness * self.best_cold_wall(exec, profiles, &job.workload, module);
        let mut est = JobEstimates {
            service_s: vec![0.0; n_boards],
            energy_j: vec![0.0; n_boards],
            warm: vec![false; n_boards],
        };
        for b in 0..n_boards {
            let arch = self.cluster.arch_key(b);
            let (wall, energy) = self.estimate_on(exec, profiles, cache, policy, job, module, b);
            est.service_s[b] = wall;
            est.energy_j[b] = energy;
            est.warm[b] = policy == PolicyMode::Warm && cache.is_warm(job.taxon, arch);
        }
        (est, slo_s)
    }

    /// Arrival-path policy resolution: full cache lookup (training on
    /// miss, warm refresh on staleness — asynchronous, off the serving
    /// path, so the triggering job runs its stock binary), then the
    /// admission latency guard. Returns the schedule to run and the
    /// guarded service estimate on board `b`.
    #[allow(clippy::too_many_arguments)]
    fn resolve_with_training(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &mut PolicyCache,
        policy: PolicyMode,
        job: &JobSpec,
        module: &Module,
        b: usize,
        cold_est: f64,
        train_time_s: &mut f64,
        train_energy_j: &mut f64,
        guard_bypasses: &mut u64,
    ) -> (Option<(astro_core::schedule::StaticSchedule, u32)>, f64) {
        let schedule = match policy {
            PolicyMode::Cold => None,
            PolicyMode::Warm => {
                let arch = self.cluster.arch_key(b);
                match cache.lookup(job.taxon, arch) {
                    CacheDecision::Hit(s, v) => Some((s, v)),
                    CacheDecision::Stale(snap) => {
                        let (trained, t, e) =
                            self.train(job, b, Some(&snap), self.params.refresh_episodes);
                        *train_time_s += t;
                        *train_energy_j += e;
                        let snapshot = trained.hooks.agent.snapshot();
                        cache.refresh(job.taxon, arch, trained.static_schedule, snapshot);
                        None
                    }
                    CacheDecision::Miss => {
                        let (trained, t, e) = self.train(job, b, None, self.params.train.episodes);
                        *train_time_s += t;
                        *train_energy_j += e;
                        let snapshot = trained.hooks.agent.snapshot();
                        cache.insert(job.taxon, arch, trained.static_schedule, snapshot);
                        None
                    }
                }
            }
        };
        self.apply_guard(
            exec,
            profiles,
            job,
            module,
            b,
            schedule,
            cold_est,
            guard_bypasses,
        )
    }

    /// Admission latency guard: when the schedule's profiled service on
    /// board `b` regresses past the guard factor, the job runs its
    /// stock binary instead.
    #[allow(clippy::too_many_arguments)]
    fn apply_guard(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        job: &JobSpec,
        module: &Module,
        b: usize,
        schedule: Option<(astro_core::schedule::StaticSchedule, u32)>,
        cold_est: f64,
        guard_bypasses: &mut u64,
    ) -> (Option<(astro_core::schedule::StaticSchedule, u32)>, f64) {
        match schedule {
            None => (None, cold_est),
            Some((st, v)) => {
                let (cold_wall, _) = self.profile(
                    exec,
                    profiles,
                    &job.workload,
                    module,
                    b,
                    ProfileTable::COLD,
                    None,
                );
                let (warm_wall, _) =
                    self.profile(exec, profiles, &job.workload, module, b, v as u64, Some(st));
                if warm_wall > cold_wall * self.params.latency_guard {
                    *guard_bypasses += 1;
                    (None, cold_wall)
                } else {
                    (Some((st, v)), warm_wall)
                }
            }
        }
    }

    // ---- execution ----------------------------------------------------------

    /// Queue `qj` on board `b`, starting it immediately when idle.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_or_start(
        &self,
        exec: &dyn Executor,
        state: &mut ClusterState,
        queue: &mut EventQueue,
        cold_progs: &mut BTreeMap<&'static str, CompiledProgram>,
        warm_progs: &mut BTreeMap<WarmKey, CompiledProgram>,
        modules: &BTreeMap<&'static str, Module>,
        b: usize,
        qj: QueuedJob,
    ) {
        if state.boards[b].in_flight.is_none() {
            self.start_job(exec, state, queue, cold_progs, warm_progs, modules, b, qj);
        } else {
            state.boards[b].queue.push_back(qj);
        }
    }

    /// Begin service of `qj` on idle board `b` *now*: one executor run
    /// fixes the true finish time, the completion event is scheduled,
    /// and dispatchers see only the profiled estimate until then.
    #[allow(clippy::too_many_arguments)]
    fn start_job(
        &self,
        exec: &dyn Executor,
        state: &mut ClusterState,
        queue: &mut EventQueue,
        cold_progs: &mut BTreeMap<&'static str, CompiledProgram>,
        warm_progs: &mut BTreeMap<WarmKey, CompiledProgram>,
        modules: &BTreeMap<&'static str, Module>,
        b: usize,
        qj: QueuedJob,
    ) {
        debug_assert!(state.boards[b].in_flight.is_none());
        let spec = &self.cluster.boards[b];
        let w = &qj.job.workload;
        let module = &modules[w.name];
        let full = spec.config_space().full();
        let r = match &qj.schedule {
            None => {
                // Stock binary under GTS (cold mode, cache misses
                // awaiting the async training, guard bypasses).
                let prog = cold_progs
                    .entry(w.name)
                    .or_insert_with(|| compile(module).expect("workload compiles"));
                exec.execute(&ExecRequest {
                    workload: w.name,
                    module,
                    program: prog,
                    board: spec,
                    config: full,
                    policy: ExecPolicy::Gts,
                    seed: qj.job.seed,
                })
            }
            Some((st, version)) => {
                let prog = warm_progs
                    .entry((w.name, qj.sched_arch, *version))
                    .or_insert_with(|| {
                        compile(&build_static(module, st)).expect("static build compiles")
                    });
                exec.execute(&ExecRequest {
                    workload: w.name,
                    module,
                    program: prog,
                    board: spec,
                    config: full,
                    policy: ExecPolicy::StaticTable(st.as_table()),
                    seed: qj.job.seed,
                })
            }
        };
        let start = state.now_s;
        let service = r.wall_time_s + qj.penalty_s;
        let finish = start + service;
        state.boards[b].busy_s += service;
        state.boards[b].in_flight = Some(InFlight {
            id: qj.job.id,
            taxon: qj.job.taxon,
            start_s: start,
            est_finish_s: start + qj.est_total_s(),
            outcome: JobOutcome {
                id: qj.job.id,
                workload: w.name,
                class: qj.job.class(),
                board: b,
                arrival_s: qj.job.arrival_s,
                start_s: start,
                finish_s: finish,
                service_s: service,
                energy_j: r.energy_j,
                slo_s: qj.slo_s,
                migrations: qj.migrations,
            },
        });
        queue.push(finish, EventKind::Completion { board: b as u32 });
    }

    // ---- migration ----------------------------------------------------------

    /// Re-resolve a migrating job's schedule for the target board
    /// without training (there is no time to train on the migration
    /// path): a fresh cache line for the target architecture applies
    /// (guard permitting), anything else runs the stock binary.
    #[allow(clippy::too_many_arguments)]
    fn migrate_onto(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &PolicyCache,
        scenario: &Scenario,
        mut qj: QueuedJob,
        target: usize,
        guard_bypasses: &mut u64,
        modules: &BTreeMap<&'static str, Module>,
    ) -> QueuedJob {
        let arch = self.cluster.arch_key(target);
        let module = &modules[qj.job.workload.name];
        let schedule = if scenario.policy == PolicyMode::Warm && qj.sched_arch == arch {
            qj.schedule
        } else if scenario.policy == PolicyMode::Warm && cache.is_warm(qj.job.taxon, arch) {
            let e = cache.peek(qj.job.taxon, arch).expect("warm entry exists");
            Some((e.schedule, e.version))
        } else {
            None
        };
        let (cold_wall, _) = self.profile(
            exec,
            profiles,
            &qj.job.workload,
            module,
            target,
            ProfileTable::COLD,
            None,
        );
        let (schedule, svc_est) = self.apply_guard(
            exec,
            profiles,
            &qj.job,
            module,
            target,
            schedule,
            cold_wall,
            guard_bypasses,
        );
        qj.schedule = schedule;
        qj.sched_arch = arch;
        qj.est_service_s = svc_est;
        qj.penalty_s += scenario.migration_cost_s;
        qj.migrations += 1;
        qj
    }

    /// Churn redistribution: place an orphaned queued job through the
    /// dispatcher (over the boards still up), paying the migration cost.
    #[allow(clippy::too_many_arguments)]
    fn redispatch(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &mut PolicyCache,
        scenario: &Scenario,
        dispatcher: &mut dyn Dispatcher,
        state: &mut ClusterState,
        queue: &mut EventQueue,
        cold_progs: &mut BTreeMap<&'static str, CompiledProgram>,
        warm_progs: &mut BTreeMap<WarmKey, CompiledProgram>,
        modules: &BTreeMap<&'static str, Module>,
        qj: QueuedJob,
        guard_bypasses: &mut u64,
    ) -> usize {
        let (est, _) = self.estimates(exec, profiles, cache, scenario.policy, &qj.job, modules);
        let b = dispatcher.pick(state, &qj.job, &est);
        assert!(state.up(b), "dispatcher picked down board {b}");
        let qj = self.migrate_onto(
            exec,
            profiles,
            cache,
            scenario,
            qj,
            b,
            guard_bypasses,
            modules,
        );
        // Oracle accumulators track redistributed work too (the oracle
        // still books what it re-plans, it just never observes reality).
        let acc = &mut state.boards[b].oracle_busy_until_s;
        *acc = acc.max(state.now_s) + qj.est_total_s();
        state.boards[b].dispatched += 1;
        self.enqueue_or_start(exec, state, queue, cold_progs, warm_progs, modules, b, qj);
        b
    }

    /// Preemptive redispatch scan: walk every live board's queue in
    /// order, predict each queued job's finish from observable state,
    /// and migrate predicted SLO-missers to a board predicted to *meet*
    /// the deadline (never a sideways bounce — a migration must turn a
    /// predicted miss into a predicted hit).
    #[allow(clippy::too_many_arguments)]
    fn preempt_scan(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &mut PolicyCache,
        scenario: &Scenario,
        state: &mut ClusterState,
        queue: &mut EventQueue,
        cold_progs: &mut BTreeMap<&'static str, CompiledProgram>,
        warm_progs: &mut BTreeMap<WarmKey, CompiledProgram>,
        modules: &BTreeMap<&'static str, Module>,
        stats: &mut KernelStats,
        guard_bypasses: &mut u64,
    ) {
        let n_boards = self.cluster.len();
        for b in 0..n_boards {
            if !state.up(b) || state.boards[b].queue.is_empty() {
                continue;
            }
            let mut t_avail = match &state.boards[b].in_flight {
                Some(f) => f.est_finish_s.max(state.now_s),
                None => state.now_s,
            };
            let mut kept = std::collections::VecDeque::new();
            while let Some(qj) = state.boards[b].queue.pop_front() {
                let pred_finish = t_avail + qj.est_total_s();
                let deadline = qj.job.arrival_s + qj.slo_s;
                let target = if pred_finish > deadline && qj.migrations < scenario.max_migrations {
                    // Best alternative: lowest predicted finish among
                    // the other live boards, by observable estimates.
                    let module = &modules[qj.job.workload.name];
                    let mut best: Option<(f64, usize)> = None;
                    for b2 in state.up_boards().filter(|&b2| b2 != b) {
                        let (wall, _) = self.estimate_on(
                            exec,
                            profiles,
                            cache,
                            scenario.policy,
                            &qj.job,
                            module,
                            b2,
                        );
                        // The job keeps its already-accumulated penalty
                        // on the target board, so the prediction must
                        // carry it — or a re-migration could be
                        // approved that is itself predicted to miss.
                        let alt = state.online_busy_until_s(b2).max(state.now_s)
                            + qj.penalty_s
                            + scenario.migration_cost_s
                            + wall;
                        if best.map(|(t, _)| alt < t).unwrap_or(true) {
                            best = Some((alt, b2));
                        }
                    }
                    best.filter(|&(alt_finish, _)| alt_finish <= deadline)
                } else {
                    None
                };
                match target {
                    Some((_, b2)) => {
                        let qj2 = self.migrate_onto(
                            exec,
                            profiles,
                            cache,
                            scenario,
                            qj,
                            b2,
                            guard_bypasses,
                            modules,
                        );
                        state.boards[b2].dispatched += 1;
                        self.enqueue_or_start(
                            exec, state, queue, cold_progs, warm_progs, modules, b2, qj2,
                        );
                        stats.migrations += 1;
                    }
                    None => {
                        t_avail = pred_finish;
                        kept.push_back(qj);
                    }
                }
            }
            state.boards[b].queue = kept;
        }
    }

    /// Observable (wall, energy) estimate of `job` on board `b` under
    /// the schedule it would run there (fresh cache line or stock
    /// binary). The single source of the policy-estimate rule: both
    /// arrival-time dispatch estimates and preemption-scan predictions
    /// go through here, so they can never disagree.
    #[allow(clippy::too_many_arguments)]
    fn estimate_on(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        cache: &PolicyCache,
        policy: PolicyMode,
        job: &JobSpec,
        module: &Module,
        b: usize,
    ) -> (f64, f64) {
        let arch = self.cluster.arch_key(b);
        if policy == PolicyMode::Warm && cache.is_warm(job.taxon, arch) {
            let e = cache.peek(job.taxon, arch).expect("warm entry exists");
            self.profile(
                exec,
                profiles,
                &job.workload,
                module,
                b,
                e.version as u64,
                Some(e.schedule),
            )
        } else {
            self.profile(
                exec,
                profiles,
                &job.workload,
                module,
                b,
                ProfileTable::COLD,
                None,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_orders_by_time_then_push() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::MonitorTick);
        q.push(1.0, EventKind::Arrival(0));
        q.push(1.0, EventKind::Completion { board: 3 });
        q.push(0.5, EventKind::BoardDown(1));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().unwrap().kind, EventKind::BoardDown(1));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        // Equal timestamps pop in push order.
        assert_eq!(a.kind, EventKind::Arrival(0));
        assert_eq!(b.kind, EventKind::Completion { board: 3 });
        assert!(a.seq < b.seq);
        assert_eq!(q.pop().unwrap().kind, EventKind::MonitorTick);
        assert!(q.pop().is_none());
        assert_eq!(q.pushed, 4);
        assert_eq!(q.popped, 4);
        assert!(q.is_empty());
    }

    #[test]
    fn scenario_builders_compose() {
        let s = Scenario::online(PolicyMode::Warm)
            .with_churn(vec![ChurnEvent {
                time_s: 1.0,
                board: 0,
                up: false,
            }])
            .with_preemption(0.5, 0.01, 3);
        assert_eq!(s.dispatch, DispatchMode::Online);
        assert!(s.preemption);
        assert_eq!(s.max_migrations, 3);
        assert_eq!(s.churn.len(), 1);
        assert_eq!(s.label(), "warm/online");
        let o = Scenario::oracle(PolicyMode::Cold);
        assert_eq!(o.dispatch, DispatchMode::Oracle);
        assert!(!o.preemption);
        assert_eq!(o.label(), "cold/oracle");
    }
}
