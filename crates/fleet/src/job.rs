//! Jobs and the workload taxonomy the shared policy cache is keyed by.
//!
//! A job is one tenant's request to run one workload once. Its *class*
//! is derived from the same compile-time phase mining the Astro pipeline
//! performs (§3.1): the dominant program phase across the module's
//! functions. Because Astro's static schedules map *phases* (not
//! functions) to configurations, a schedule learned for one workload of
//! a class transfers to every other workload of that class on the same
//! board architecture — which is exactly what lets the fleet cache
//! policies across tenants.

use astro_compiler::{PhaseMap, ProgramPhase};
use astro_ir::Module;
use astro_workloads::Workload;
use std::fmt;

/// Coarse workload classes, one per dominant program phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobClass {
    /// Mostly compute kernels (CPU-bound functions dominate).
    CpuHeavy,
    /// Memory/file traffic dominates.
    MemIo,
    /// Barrier/lock/pipeline structure dominates.
    Synchronised,
    /// No dominant phase.
    Mixed,
}

impl JobClass {
    /// All classes, stable order.
    pub const ALL: [JobClass; 4] = [
        JobClass::CpuHeavy,
        JobClass::MemIo,
        JobClass::Synchronised,
        JobClass::Mixed,
    ];

    /// Stable key fragment for cache keys and reports.
    pub fn key(self) -> &'static str {
        match self {
            JobClass::CpuHeavy => "cpu",
            JobClass::MemIo => "memio",
            JobClass::Synchronised => "sync",
            JobClass::Mixed => "mixed",
        }
    }
}

impl fmt::Display for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// The policy-cache key: the coarse class (what dispatchers steer on)
/// plus a bucketed phase-histogram signature (what schedules must fit).
/// Two workloads share a taxon exactly when their mined phase structure
/// is bucket-identical — close enough for a phase-indexed schedule to
/// transfer between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Taxon {
    /// Dominant-phase class.
    pub class: JobClass,
    /// Packed base-3 buckets of the Blocked/IoBound/CpuBound function
    /// shares (0 = none, 1 = minority, 2 = majority).
    pub signature: u8,
}

impl Taxon {
    /// Stable key string for reports (`cpu/021` style).
    pub fn key(self) -> String {
        format!(
            "{}/{}{}{}",
            self.class.key(),
            self.signature / 9,
            (self.signature / 3) % 3,
            self.signature % 3
        )
    }
}

fn bucket(n: usize, total: usize) -> u8 {
    if n == 0 {
        0
    } else if 2 * n <= total {
        1
    } else {
        2
    }
}

/// Compute a module's taxonomy: dominant mined phase → class, bucketed
/// phase shares → signature. `Other` functions are ignored for the
/// dominant unless nothing else exists; ties break in
/// [`ProgramPhase::index`] order (Blocked < IoBound < CpuBound), keeping
/// the result deterministic.
pub fn taxon_of(m: &Module) -> Taxon {
    let hist = PhaseMap::compute(m).histogram();
    let informative = [
        (ProgramPhase::Blocked, JobClass::Synchronised),
        (ProgramPhase::IoBound, JobClass::MemIo),
        (ProgramPhase::CpuBound, JobClass::CpuHeavy),
    ];
    let mut best: Option<(usize, JobClass)> = None;
    for (phase, class) in informative {
        let n = hist[phase.index()];
        if n > 0 && best.map(|(b, _)| n > b).unwrap_or(true) {
            best = Some((n, class));
        }
    }
    let class = best.map(|(_, c)| c).unwrap_or(JobClass::Mixed);
    let total: usize = hist.iter().sum();
    let signature = bucket(hist[ProgramPhase::Blocked.index()], total) * 9
        + bucket(hist[ProgramPhase::IoBound.index()], total) * 3
        + bucket(hist[ProgramPhase::CpuBound.index()], total);
    Taxon { class, signature }
}

/// A module's coarse class (see [`taxon_of`]).
pub fn classify_module(m: &Module) -> JobClass {
    taxon_of(m).class
}

/// One tenant job in the arrival stream.
#[derive(Clone, Copy)]
pub struct JobSpec {
    /// Position in the stream (also the reporting order).
    pub id: u32,
    /// The program this tenant runs.
    pub workload: Workload,
    /// Full taxonomy (the policy-cache key; `taxon.class` is what
    /// dispatchers steer on).
    pub taxon: Taxon,
    /// Arrival time, seconds since stream start.
    pub arrival_s: f64,
    /// SLO as a multiple of the workload's unloaded service time on the
    /// fastest board architecture (the fleet resolves it to seconds once
    /// profiles exist).
    pub slo_tightness: f64,
    /// Behavioural seed for this job's run.
    pub seed: u64,
}

impl JobSpec {
    /// The coarse class dispatchers steer on.
    pub fn class(&self) -> JobClass {
        self.taxon.class
    }
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("id", &self.id)
            .field("workload", &self.workload.name)
            .field("taxon", &self.taxon)
            .field("arrival_s", &self.arrival_s)
            .field("slo_tightness", &self.slo_tightness)
            .field("seed", &self.seed)
            .finish()
    }
}

/// What happened to one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's stream id.
    pub id: u32,
    /// Workload name.
    pub workload: &'static str,
    /// Taxonomy class.
    pub class: JobClass,
    /// Board the job ran on.
    pub board: usize,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Service start (arrival + queueing delay), seconds.
    pub start_s: f64,
    /// Completion time, seconds.
    pub finish_s: f64,
    /// Pure service time (includes any training charged to this job).
    pub service_s: f64,
    /// Energy the run consumed, Joules.
    pub energy_j: f64,
    /// Resolved latency SLO, seconds.
    pub slo_s: f64,
    /// Times the job was migrated before starting (preemptive
    /// redispatch + churn redistribution).
    pub migrations: u32,
}

impl JobOutcome {
    /// End-to-end latency (queueing + service), seconds.
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }

    /// Did the job meet its SLO?
    pub fn slo_met(&self) -> bool {
        self.latency_s() <= self.slo_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_ir::{FunctionBuilder, LibCall, Ty, Value};

    fn cpu_module() -> Module {
        let mut m = Module::new("cpu");
        let mut k = FunctionBuilder::new("kernel", Ty::Void);
        k.counted_loop(10_000, |b| {
            let x = b.fmul(Ty::F64, Value::float(1.5), Value::float(0.5));
            b.fadd(Ty::F64, x, x);
        });
        k.ret(None);
        let kernel = m.add_function(k.finish());
        let mut main = FunctionBuilder::new("main", Ty::Void);
        main.call(kernel, &[]);
        main.ret(None);
        let id = m.add_function(main.finish());
        m.set_entry(id);
        m
    }

    fn io_module() -> Module {
        let mut m = Module::new("io");
        let mut k = FunctionBuilder::new("emit", Ty::Void);
        // Straight-line so loop bookkeeping does not dilute the densities.
        for _ in 0..8 {
            k.call_lib(LibCall::WriteFile, &[]);
            k.load(Ty::I64);
        }
        k.ret(None);
        let emit = m.add_function(k.finish());
        let mut main = FunctionBuilder::new("main", Ty::Void);
        main.call(emit, &[]);
        main.ret(None);
        let id = m.add_function(main.finish());
        m.set_entry(id);
        m
    }

    #[test]
    fn classification_follows_dominant_phase() {
        assert_eq!(classify_module(&cpu_module()), JobClass::CpuHeavy);
        assert_eq!(classify_module(&io_module()), JobClass::MemIo);
    }

    #[test]
    fn every_workload_classifies() {
        use astro_workloads::InputSize;
        for w in astro_workloads::all() {
            let m = (w.build)(InputSize::Test);
            // Any class is fine; the call must be deterministic.
            let a = classify_module(&m);
            let b = classify_module(&m);
            assert_eq!(a, b, "{}", w.name);
        }
    }

    #[test]
    fn outcome_latency_and_slo() {
        let o = JobOutcome {
            id: 0,
            workload: "x",
            class: JobClass::Mixed,
            board: 0,
            arrival_s: 1.0,
            start_s: 2.0,
            finish_s: 4.0,
            service_s: 2.0,
            energy_j: 0.5,
            slo_s: 2.5,
            migrations: 0,
        };
        assert!((o.latency_s() - 3.0).abs() < 1e-12);
        assert!(!o.slo_met());
    }
}
