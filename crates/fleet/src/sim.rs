//! The fleet simulator: parameters, profiling/training machinery, and
//! the public entry point over the discrete-event kernel.
//!
//! Earlier revisions ran a three-stage batch (plan every placement
//! sequentially → execute boards in parallel → aggregate). That shape
//! could not express anything that *reacts* during the run — live
//! queue feedback, SLO-driven migration, board churn — so placement now
//! happens inside the event loop of [`crate::kernel`], per arrival,
//! against observable [`ClusterState`](crate::state::ClusterState).
//! [`Scenario::oracle`] reproduces the batch planner's placements
//! through the kernel (profiled-estimate accumulators, stable fleet),
//! keeping historical comparisons meaningful; [`Scenario::online`]
//! opens the new capabilities.
//!
//! **Backends.** Every job and profile run goes through one
//! [`Executor`]. The default [`BackendKind::Machine`] interprets on the
//! cycle-accurate engine. [`BackendKind::Replay`] runs in
//! *calibration-then-replay* mode: every distinct (workload,
//! architecture) pair is calibrated once up front, after which each of
//! the potentially hundreds of thousands of job runs is answered by
//! trace composition in microseconds. Policy *training* (cache
//! misses/refreshes) stays on the engine in both modes — learning
//! episodes need live counter feedback.
//!
//! Same cluster + params + job stream + scenario ⇒ byte-identical
//! outcome.

use crate::cache::PolicyCache;
use crate::cluster::ClusterSpec;
use crate::dispatch::Dispatcher;
use crate::job::JobSpec;
use crate::kernel::Scenario;
use crate::metrics::FleetOutcome;
use astro_core::pipeline::{build_static, AstroPipeline, PipelineConfig, TrainedAstro};
use astro_core::replay::ReplayExecutor;
use astro_core::schedule::StaticSchedule;
use astro_exec::executor::{BackendKind, ExecPolicy, ExecRequest, Executor};
use astro_exec::machine::MachineParams;
use astro_exec::program::compile;
use astro_exec::time::SimTime;
use astro_hw::boards::BoardSpec;
use astro_ir::Module;
use astro_workloads::{InputSize, Workload};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How jobs are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyMode {
    /// Every job runs its original binary under GTS with all cores on —
    /// the fleet without Astro.
    Cold,
    /// Jobs run Astro static binaries; schedules come from the shared
    /// policy cache (training on miss, warm refresh on staleness).
    Warm,
}

impl PolicyMode {
    /// Label for reports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyMode::Cold => "cold",
            PolicyMode::Warm => "warm",
        }
    }
}

/// Fleet-level knobs.
#[derive(Clone, Debug)]
pub struct FleetParams {
    /// Input class every job runs.
    pub size: InputSize,
    /// Engine parameters for job and profile runs.
    pub machine: MachineParams,
    /// Execution backend serving profile and job runs (training always
    /// uses the engine). Default: [`BackendKind::Machine`].
    pub backend: BackendKind,
    /// Training configuration for cache misses.
    pub train: PipelineConfig,
    /// Episodes for warm-started staleness refreshes (≤ `train.episodes`
    /// is the point: the snapshot already encodes the policy).
    pub refresh_episodes: usize,
    /// Admission latency guard: a cached schedule is applied to a job
    /// only when its profiled service time on the chosen board is within
    /// this factor of the stock (cold) binary's. Class-keyed policies
    /// transfer across workloads of a class; the guard bounds the
    /// latency tax when the transfer is poor (the job then runs its
    /// stock binary and only the class's well-transferring siblings keep
    /// the energy win). The default of 1.01 admits schedules that
    /// profile as time-neutral (within profiling noise) or faster;
    /// `f64::INFINITY` disables the guard.
    pub latency_guard: f64,
    /// Shards the kernel's execution plane is partitioned into
    /// (contiguous board chunks, each with its own event queue; see
    /// [`crate::shard`]). Clamped to the board count. Results are
    /// byte-identical for every value; `1` (the default) is the
    /// single-loop PR 4 kernel. Must be at least 1.
    pub shards: usize,
    /// OS threads shard advances may fan out across (`1` = always
    /// serial). Purely a wall-clock knob: results are identical for
    /// every value. Defaults to the machine's available parallelism.
    pub shard_workers: usize,
    /// Base seed (profiles and training derive from it).
    pub seed: u64,
}

impl FleetParams {
    /// Millisecond-scale defaults matching the experiment harness: the
    /// 500 ms monitor of §3.2.1 scaled to the synthetic workloads'
    /// runtimes.
    pub fn new(seed: u64) -> Self {
        let machine = MachineParams {
            checkpoint_interval: SimTime::from_micros(400.0),
            balance_interval: SimTime::from_micros(100.0),
            timeslice: SimTime::from_micros(400.0),
            min_config_dwell: SimTime::from_micros(800.0),
            seed,
            ..MachineParams::default()
        };
        FleetParams {
            size: InputSize::Test,
            machine,
            backend: BackendKind::Machine,
            train: PipelineConfig {
                machine,
                episodes: 4,
                model_seeds: 1,
                ..PipelineConfig::default()
            },
            refresh_episodes: 2,
            latency_guard: 1.01,
            shards: 1,
            shard_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            seed,
        }
    }
}

/// Run `f(0..n)` across up to `workers` OS threads and return the
/// results in index order. One contiguous chunk per worker, no shared
/// index, no result lock; `workers == 1` degenerates to a plain
/// sequential map, so serial and parallel callers share one code path
/// and one contract: results identical whatever the worker count.
pub fn chunked_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(workers > 0, "chunked_map needs at least one worker");
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let workers = workers.min(n.max(1));
    let chunk = n.div_ceil(workers).max(1);

    std::thread::scope(|s| {
        for (w, slots) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = w * chunk;
                for (off, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}

/// [`chunked_map`] with one worker — the sequential mapper.
pub fn serial_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    chunked_map(n, 1, f)
}

/// Address-identity key of a `&'static str`: workload and architecture
/// names are interned statics, so the pointer identifies the string for
/// the life of the process. Used to key the per-run memo tables below —
/// every memoised value is a pure function of the string *contents*, so
/// if two distinct addresses ever carried equal text the only effect
/// would be a duplicated entry with a bit-identical value. The tables
/// are probed on every arrival and never iterated, which is exactly the
/// trade: integer key compares on the hot path, no semantic exposure to
/// address layout.
#[inline]
pub(crate) fn sk(s: &'static str) -> usize {
    s.as_ptr() as usize
}

/// Memoised (workload, architecture, policy-version) service profiles,
/// keyed by [`sk`] addresses. Version [`ProfileTable::COLD`] is the
/// GTS/original-binary profile.
pub(crate) struct ProfileTable {
    map: BTreeMap<(usize, usize, u64), (f64, f64)>,
    /// Per-workload unloaded best-architecture cold wall (the SLO
    /// reference). Pure function of the profile map — memoised because
    /// every arrival re-derives its SLO from it.
    best_cold: BTreeMap<usize, f64>,
    /// Admission-guard verdict per (workload, arch, policy version):
    /// `(admit, guarded wall)`. Pure function of two memoised profiles,
    /// so the memo is bit-neutral; it spares the arrival path both
    /// profile probes once a (workload, arch, version) has been seen.
    pub(crate) guard: BTreeMap<(usize, usize, u32), (bool, f64)>,
}

impl ProfileTable {
    pub(crate) const COLD: u64 = u64::MAX;

    pub(crate) fn new() -> Self {
        ProfileTable {
            map: BTreeMap::new(),
            best_cold: BTreeMap::new(),
            guard: BTreeMap::new(),
        }
    }
}

/// The fleet simulator, bound to a cluster.
pub struct FleetSim<'a> {
    /// The boards.
    pub cluster: &'a ClusterSpec,
    /// Knobs.
    pub params: FleetParams,
    /// The replay backend, when [`FleetParams::backend`] asks for one —
    /// owned by the simulator so its calibration cache (a pure function
    /// of (workload, architecture, engine parameters)) is shared across
    /// every run of this simulator instead of re-recorded per scenario.
    /// Behind an `Arc` so harnesses comparing shard counts can hand one
    /// warmed cache to every leg ([`FleetSim::replay_handle`]).
    pub(crate) replay_exec: Option<Arc<ReplayExecutor>>,
}

impl<'a> FleetSim<'a> {
    /// A simulator over `cluster`.
    pub fn new(cluster: &'a ClusterSpec, params: FleetParams) -> Self {
        assert!(!cluster.is_empty(), "fleet needs at least one board");
        assert!(
            params.shards >= 1,
            "the kernel needs at least one shard (got --shards 0?)"
        );
        let replay_exec = match params.backend {
            BackendKind::Machine => None,
            BackendKind::Replay => Some(Arc::new(ReplayExecutor::from_machine(params.machine))),
        };
        FleetSim {
            cluster,
            params,
            replay_exec,
        }
    }

    /// This simulator's replay backend, when it has one. Hand the
    /// handle to [`FleetSim::with_replay`] on another simulator to
    /// share the warmed calibration cache — sound only when both run
    /// the same machine parameters and input size (calibrations are
    /// keyed by `(workload, architecture)` alone), and bit-neutral
    /// because every cache entry is a pure function of those inputs.
    pub fn replay_handle(&self) -> Option<Arc<ReplayExecutor>> {
        self.replay_exec.clone()
    }

    /// A simulator over `cluster` adopting an existing replay backend
    /// instead of building a cold one (see [`FleetSim::replay_handle`]
    /// for when that is sound). Forces [`BackendKind::Replay`].
    pub fn with_replay(
        cluster: &'a ClusterSpec,
        params: FleetParams,
        exec: Arc<ReplayExecutor>,
    ) -> Self {
        let mut sim = FleetSim::new(cluster, params);
        sim.params.backend = BackendKind::Replay;
        sim.replay_exec = Some(exec);
        sim
    }

    /// Run `jobs` (arrival order) under `dispatcher` and `scenario`
    /// through the event kernel. Deterministic: same inputs ⇒
    /// byte-identical [`FleetOutcome`].
    pub fn run(
        &self,
        jobs: &[JobSpec],
        dispatcher: &mut dyn Dispatcher,
        cache: &mut PolicyCache,
        scenario: &Scenario,
    ) -> FleetOutcome {
        let mut off = crate::telemetry::FlightRecorder::off();
        self.run_kernel(jobs, dispatcher, cache, scenario, &mut off)
    }

    /// [`FleetSim::run`] with a live flight recorder: `telemetry`
    /// collects trace events, streaming digests, window samples and
    /// wall-clock phase timings as the kernel runs. Telemetry never
    /// perturbs the simulation — the returned [`FleetOutcome`] is
    /// byte-identical to an untraced run of the same inputs for every
    /// shard count (pinned by the `proptest_telemetry` suite).
    pub fn run_traced(
        &self,
        jobs: &[JobSpec],
        dispatcher: &mut dyn Dispatcher,
        cache: &mut PolicyCache,
        scenario: &Scenario,
        telemetry: &mut crate::telemetry::FlightRecorder,
    ) -> FleetOutcome {
        self.run_kernel(jobs, dispatcher, cache, scenario, telemetry)
    }

    // ---- profiling & training (kernel callbacks) ----------------------------

    /// Unloaded cold service time on the fastest architecture (the SLO
    /// reference point).
    pub(crate) fn best_cold_wall(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        w: &Workload,
        module: &Module,
    ) -> f64 {
        if let Some(&hit) = profiles.best_cold.get(&sk(w.name)) {
            return hit;
        }
        let mut best = f64::INFINITY;
        for key in self.cluster.arch_keys() {
            let b = self.cluster.representative_board_idx(key);
            let (wall, _) = self.profile(exec, profiles, w, module, b, ProfileTable::COLD, None);
            best = best.min(wall);
        }
        profiles.best_cold.insert(sk(w.name), best);
        best
    }

    /// Profiled (wall, energy) of `w` on board `b` under the given
    /// policy version: the mean of three executor runs at distinct seeds
    /// (the ±5% service jitter would otherwise dominate guard decisions
    /// near the boundary), memoised per distinct key.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn profile(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        w: &Workload,
        module: &Module,
        b: usize,
        version: u64,
        schedule: Option<StaticSchedule>,
    ) -> (f64, f64) {
        const PROFILE_SAMPLES: u64 = 3;
        let arch = self.cluster.arch_key(b);
        let key = (sk(w.name), sk(arch), version);
        if let Some(&hit) = profiles.map.get(&key) {
            return hit;
        }
        let spec = &self.cluster.boards[b];
        let base_seed = self
            .params
            .seed
            .wrapping_add(fnv(w.name))
            .wrapping_add(fnv(arch).rotate_left(17));
        let full = spec.config_space().full();
        let (program, policy) = match schedule {
            None => (compile(module).expect("workload compiles"), ExecPolicy::Gts),
            Some(st) => (
                compile(&build_static(module, &st)).expect("static build compiles"),
                ExecPolicy::StaticTable(st.as_table()),
            ),
        };
        let mut wall = 0.0;
        let mut energy = 0.0;
        for k in 0..PROFILE_SAMPLES {
            let seed = base_seed.wrapping_add(k.wrapping_mul(0x9E37_79B9));
            let (wall_time_s, energy_j) = exec.execute_scalar(&ExecRequest {
                workload: w.name,
                module,
                program: &program,
                board: spec,
                config: full,
                policy,
                seed,
            });
            wall += wall_time_s;
            energy += energy_j;
        }
        let out = (
            wall / PROFILE_SAMPLES as f64,
            energy / PROFILE_SAMPLES as f64,
        );
        profiles.map.insert(key, out);
        out
    }

    /// (Re)train a policy for `job`'s class on board `b`'s architecture.
    /// Returns the trained artefacts plus the wall time and energy of
    /// the learning episodes (charged to the triggering job). Always
    /// runs on the cycle-accurate engine: learning needs live counter
    /// feedback no trace can substitute.
    pub(crate) fn train(
        &self,
        job: &JobSpec,
        b: usize,
        warm: Option<&astro_rl::qlearn::PolicySnapshot>,
        episodes: usize,
    ) -> (TrainedAstro, f64, f64) {
        let spec: &BoardSpec = &self.cluster.boards[b];
        let mut cfg = self.params.train.clone();
        cfg.episodes = episodes.max(1);
        cfg.machine.seed = self
            .params
            .seed
            .wrapping_add(fnv(&job.taxon.key()))
            .wrapping_add(fnv(self.cluster.arch_key(b)).rotate_left(29));
        let pipe = AstroPipeline::new(spec, cfg);
        let module = (job.workload.build)(self.params.size);
        let trained = pipe.train_warm(&module, warm);
        let t: f64 = trained.learning_runs.iter().map(|r| r.wall_time_s).sum();
        let e: f64 = trained.learning_runs.iter().map(|r| r.energy_j).sum();
        (trained, t, e)
    }
}

/// Deterministic string hash (FNV-1a): profile/training seeds must not
/// depend on process-level hasher state.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::dispatch::{LeastLoaded, PhaseAware};
    use crate::kernel::ChurnEvent;

    fn jobs(n: usize, seed: u64) -> Vec<JobSpec> {
        let pool: Vec<Workload> = ["swaptions", "bfs"]
            .iter()
            .map(|name| astro_workloads::by_name(name).unwrap())
            .collect();
        ArrivalProcess::Poisson {
            rate_jobs_per_s: 2000.0,
        }
        .generate(n, &pool, InputSize::Test, (4.0, 8.0), seed)
    }

    #[test]
    fn cold_fleet_completes_all_jobs_deterministically() {
        let cluster = ClusterSpec::heterogeneous(2);
        let sim = FleetSim::new(&cluster, FleetParams::new(5));
        let stream = jobs(6, 3);
        let mut cache = PolicyCache::new(0);
        let sc = Scenario::oracle(PolicyMode::Cold);
        let a = sim.run(&stream, &mut LeastLoaded, &mut cache, &sc);
        let b = sim.run(&stream, &mut LeastLoaded, &mut cache, &sc);

        assert_eq!(a.outcomes.len(), 6);
        for (i, o) in a.outcomes.iter().enumerate() {
            assert_eq!(o.id as usize, i);
            assert!(o.board < 2);
            assert!(o.start_s >= o.arrival_s);
            assert!(o.finish_s > o.start_s);
            assert!(o.energy_j > 0.0);
            assert!(o.slo_s > 0.0);
            assert_eq!(o.migrations, 0);
        }
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.finish_s, y.finish_s);
            assert_eq!(x.energy_j, y.energy_j);
            assert_eq!(x.board, y.board);
        }
        assert!(a
            .metrics
            .board_util
            .iter()
            .all(|&u| (0.0..=1.0).contains(&u)));
        assert_eq!(a.cache, crate::cache::CacheStats::default());
        assert_eq!(a.train_time_s, 0.0);
        assert_eq!(a.backend, "machine");
        assert_eq!(a.dispatch, "oracle");
        assert_eq!(a.calibrations, 0);
        assert!(a.dropped.is_empty());
        assert_eq!(a.kernel.arrivals, 6);
        assert_eq!(a.kernel.completions, 6);
        assert_eq!(a.kernel.dropped, 0);
    }

    #[test]
    fn online_mode_completes_and_is_deterministic() {
        let cluster = ClusterSpec::heterogeneous(3);
        let sim = FleetSim::new(&cluster, FleetParams::new(9));
        let stream = jobs(8, 1);
        let mut cache = PolicyCache::new(0);
        let sc = Scenario::online(PolicyMode::Cold);
        let a = sim.run(&stream, &mut LeastLoaded, &mut cache, &sc);
        let b = sim.run(&stream, &mut LeastLoaded, &mut cache, &sc);
        assert_eq!(a.outcomes.len(), 8);
        assert_eq!(a.dispatch, "online");
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.finish_s, y.finish_s);
            assert_eq!(x.board, y.board);
        }
        // Online and oracle may place differently, but both complete
        // the stream and balance their event accounting.
        let oracle = sim.run(
            &stream,
            &mut LeastLoaded,
            &mut cache,
            &Scenario::oracle(PolicyMode::Cold),
        );
        assert_eq!(oracle.outcomes.len(), a.outcomes.len());
        assert_eq!(a.kernel.arrivals, a.kernel.completions + a.kernel.dropped);
    }

    #[test]
    fn warm_mode_trains_once_then_hits() {
        let cluster = ClusterSpec::homogeneous(2, BoardSpec::odroid_xu4());
        let mut params = FleetParams::new(11);
        params.train.episodes = 1;
        let sim = FleetSim::new(&cluster, params);
        // Single-workload pool → a single (class, arch) cache line.
        let pool = vec![astro_workloads::by_name("swaptions").unwrap()];
        let stream = ArrivalProcess::Poisson {
            rate_jobs_per_s: 2000.0,
        }
        .generate(5, &pool, InputSize::Test, (6.0, 6.0), 2);
        let mut cache = PolicyCache::new(0);
        let out = sim.run(
            &stream,
            &mut PhaseAware::default(),
            &mut cache,
            &Scenario::oracle(PolicyMode::Warm),
        );

        assert_eq!(out.cache.misses, 1, "one cold training");
        assert_eq!(out.cache.hits, 4, "every later tenant reuses it");
        assert!(out.train_time_s > 0.0);
        assert!(out.train_energy_j > 0.0);
        assert_eq!(cache.len(), 1);
        // Training energy is accounted in the fleet total.
        let job_energy: f64 = out.outcomes.iter().map(|o| o.energy_j).sum();
        assert!(out.metrics.total_energy_j > job_energy);
    }

    #[test]
    fn impossible_latency_guard_bypasses_every_schedule() {
        let cluster = ClusterSpec::homogeneous(2, BoardSpec::odroid_xu4());
        let mut params = FleetParams::new(11);
        params.train.episodes = 1;
        params.latency_guard = 0.0; // nothing can beat a zero budget
        let sim = FleetSim::new(&cluster, params);
        let pool = vec![astro_workloads::by_name("swaptions").unwrap()];
        let stream = ArrivalProcess::Poisson {
            rate_jobs_per_s: 2000.0,
        }
        .generate(4, &pool, InputSize::Test, (6.0, 6.0), 2);
        let mut cache = PolicyCache::new(0);
        let out = sim.run(
            &stream,
            &mut PhaseAware::default(),
            &mut cache,
            &Scenario::oracle(PolicyMode::Warm),
        );
        // The miss job runs cold with no schedule to guard; the three
        // hits all fail the impossible guard.
        assert_eq!(out.guard_bypasses, 3);
        assert_eq!(out.cache.misses, 1, "the class is still trained once");
    }

    #[test]
    fn staleness_triggers_warm_refresh() {
        let cluster = ClusterSpec::homogeneous(1, BoardSpec::odroid_xu4());
        let mut params = FleetParams::new(21);
        params.train.episodes = 1;
        params.refresh_episodes = 1;
        let sim = FleetSim::new(&cluster, params);
        let pool = vec![astro_workloads::by_name("bfs").unwrap()];
        let stream = ArrivalProcess::Poisson {
            rate_jobs_per_s: 2000.0,
        }
        .generate(4, &pool, InputSize::Test, (6.0, 6.0), 2);
        let mut cache = PolicyCache::new(2);
        let out = sim.run(
            &stream,
            &mut LeastLoaded,
            &mut cache,
            &Scenario::oracle(PolicyMode::Warm),
        );
        assert_eq!(out.cache.misses, 1);
        assert!(out.cache.stale_refreshes >= 1, "{:?}", out.cache);
    }

    #[test]
    fn replay_backend_is_deterministic_and_completes() {
        let cluster = ClusterSpec::heterogeneous(2);
        let mut params = FleetParams::new(5);
        params.backend = BackendKind::Replay;
        let sim = FleetSim::new(&cluster, params);
        let stream = jobs(8, 3);
        let mut cache = PolicyCache::new(0);
        let sc = Scenario::oracle(PolicyMode::Cold);
        let a = sim.run(&stream, &mut LeastLoaded, &mut cache, &sc);
        let b = sim.run(&stream, &mut LeastLoaded, &mut cache, &sc);
        assert_eq!(a.outcomes.len(), 8);
        assert_eq!(a.backend, "replay");
        // Two workloads × two architectures, calibrated once up front.
        assert_eq!(a.calibrations, 4);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.finish_s, y.finish_s);
            assert_eq!(x.energy_j, y.energy_j);
            assert_eq!(x.board, y.board);
        }
        for o in &a.outcomes {
            assert!(o.service_s > 0.0 && o.energy_j > 0.0);
        }
    }

    #[test]
    fn replay_backend_tracks_machine_backend() {
        // Same stream, both backends: totals must agree within the
        // replay fidelity tolerance (each job within 25%; compare the
        // aggregate, which averages the per-seed wobble out).
        let cluster = ClusterSpec::heterogeneous(2);
        let stream = jobs(8, 7);
        let mut machine_params = FleetParams::new(5);
        machine_params.backend = BackendKind::Machine;
        let mut replay_params = FleetParams::new(5);
        replay_params.backend = BackendKind::Replay;
        let sc = Scenario::oracle(PolicyMode::Cold);
        let mut cache = PolicyCache::new(0);
        let exact =
            FleetSim::new(&cluster, machine_params).run(&stream, &mut LeastLoaded, &mut cache, &sc);
        let mut cache = PolicyCache::new(0);
        let fast =
            FleetSim::new(&cluster, replay_params).run(&stream, &mut LeastLoaded, &mut cache, &sc);
        let d_energy = (fast.metrics.total_energy_j - exact.metrics.total_energy_j).abs()
            / exact.metrics.total_energy_j;
        assert!(d_energy < 0.25, "energy {:.1}% off", d_energy * 100.0);
        let exact_svc: f64 = exact.outcomes.iter().map(|o| o.service_s).sum();
        let fast_svc: f64 = fast.outcomes.iter().map(|o| o.service_s).sum();
        let d_svc = (fast_svc - exact_svc).abs() / exact_svc;
        assert!(d_svc < 0.25, "service {:.1}% off", d_svc * 100.0);
    }

    #[test]
    fn board_churn_redistributes_queued_work() {
        let cluster = ClusterSpec::heterogeneous(3);
        let sim = FleetSim::new(&cluster, FleetParams::new(7));
        let stream = jobs(10, 5);
        let mid = stream[stream.len() / 2].arrival_s;
        let late = stream.last().unwrap().arrival_s;
        let sc = Scenario::online(PolicyMode::Cold)
            .with_migration_cost(1e-6)
            .with_churn(vec![
                ChurnEvent {
                    time_s: mid,
                    board: 0,
                    up: false,
                },
                ChurnEvent {
                    time_s: late * 2.0 + 1.0,
                    board: 0,
                    up: true,
                },
            ]);
        let mut cache = PolicyCache::new(0);
        let out = sim.run(&stream, &mut LeastLoaded, &mut cache, &sc);
        // Other boards stayed up: nothing may be dropped.
        assert_eq!(out.outcomes.len(), 10);
        assert!(out.dropped.is_empty());
        assert_eq!(out.kernel.board_downs, 1);
        assert_eq!(out.kernel.board_ups, 1);
        // Jobs arriving after the outage never land on board 0.
        for o in &out.outcomes {
            if o.arrival_s > mid {
                assert_ne!(o.board, 0, "job {} placed on a down board", o.id);
            }
        }
        // Determinism under churn.
        let again = sim.run(&stream, &mut LeastLoaded, &mut cache, &sc);
        for (x, y) in out.outcomes.iter().zip(&again.outcomes) {
            assert_eq!(x.finish_s, y.finish_s);
            assert_eq!(x.board, y.board);
        }
    }

    #[test]
    fn whole_fleet_down_drops_arrivals() {
        let cluster = ClusterSpec::heterogeneous(2);
        let sim = FleetSim::new(&cluster, FleetParams::new(3));
        let stream = jobs(6, 4);
        let mid = stream[3].arrival_s;
        // Every board goes down just before job 3 arrives, forever.
        let sc = Scenario::online(PolicyMode::Cold).with_churn(vec![
            ChurnEvent {
                time_s: mid - 1e-9,
                board: 0,
                up: false,
            },
            ChurnEvent {
                time_s: mid - 1e-9,
                board: 1,
                up: false,
            },
        ]);
        let mut cache = PolicyCache::new(0);
        let out = sim.run(&stream, &mut LeastLoaded, &mut cache, &sc);
        assert!(!out.dropped.is_empty(), "late arrivals must be dropped");
        assert_eq!(
            out.outcomes.len() + out.dropped.len(),
            6,
            "every job completes or is explicitly dropped"
        );
        assert_eq!(
            out.kernel.arrivals,
            out.kernel.completions + out.kernel.dropped
        );
    }

    #[test]
    fn preemption_rescues_predicted_slo_misses() {
        // One fast big-rich board and one slow LITTLE-rich board; a
        // dispatcher that piles everything onto the slow board. The
        // monitor must migrate queued jobs onto the idle fast board.
        struct Pessimal;
        impl Dispatcher for Pessimal {
            fn name(&self) -> &'static str {
                "pessimal"
            }
            fn pick(
                &mut self,
                state: &crate::state::ClusterState,
                _job: &JobSpec,
                _est: &crate::dispatch::JobEstimates,
            ) -> usize {
                state.up_boards().last().expect("a board is up")
            }
        }
        let cluster = ClusterSpec::heterogeneous(2); // board 1: RK3399
        let sim = FleetSim::new(&cluster, FleetParams::new(13));
        let pool = vec![astro_workloads::by_name("swaptions").unwrap()];
        // A tight burst with tight SLOs: queueing on one board must
        // blow the deadline for the tail of the queue.
        let stream = ArrivalProcess::Bursty {
            rate_jobs_per_s: 20000.0,
            burst: 8,
            spread_s: 1e-5,
        }
        .generate(8, &pool, InputSize::Test, (2.0, 2.0), 6);
        let sc = Scenario::online(PolicyMode::Cold).with_preemption(2e-4, 1e-6, 2);
        let mut cache = PolicyCache::new(0);
        let out = sim.run(&stream, &mut Pessimal, &mut cache, &sc);
        assert_eq!(out.outcomes.len(), 8);
        assert!(
            out.kernel.migrations > 0,
            "monitor should have migrated queued SLO-missers: {:?}",
            out.kernel
        );
        assert!(
            out.outcomes.iter().any(|o| o.board == 0),
            "migrations should land work on the idle fast board"
        );
        // Against the same dispatcher without preemption, the rescued
        // fleet meets at least as many SLOs.
        let mut cache = PolicyCache::new(0);
        let no_preempt = sim.run(
            &stream,
            &mut Pessimal,
            &mut cache,
            &Scenario::online(PolicyMode::Cold),
        );
        assert!(out.metrics.slo_misses <= no_preempt.metrics.slo_misses);
    }

    #[test]
    fn chunked_map_matches_serial_map() {
        let f = |i: usize| i * 3 + 1;
        let serial = serial_map(17, f);
        for workers in [1, 2, 3, 8, 32] {
            assert_eq!(chunked_map(17, workers, f), serial);
        }
        assert!(chunked_map::<usize, _>(0, 4, f).is_empty());
    }
}
