//! The fleet simulator: admission → dispatch → per-board execution →
//! aggregation.
//!
//! The run is split into three deterministic stages so board execution
//! can be fanned out across OS threads without the thread count ever
//! touching the results:
//!
//! 1. **Admission/dispatch** (sequential, virtual time): each arriving
//!    job is placed on a board using *profiled* service estimates — one
//!    executor run per distinct (workload, architecture, policy
//!    version), memoised — and, in warm mode, resolves its policy
//!    against the shared [`PolicyCache`] (training on misses, refreshing
//!    stale entries warm-started from the cached snapshot).
//! 2. **Execution** (parallel across boards): every board replays its
//!    assigned job sequence through the run's [`Executor`] backend;
//!    job `i` starts at `max(arrival_i, finish_{i-1})`.
//! 3. **Aggregation** (sequential, index order): outcomes are merged in
//!    job-id order into [`FleetMetrics`].
//!
//! **Backends.** Every job and profile run goes through one
//! [`Executor`]. The default [`BackendKind::Machine`] interprets on the
//! cycle-accurate engine and reproduces the published outputs
//! byte-identically. [`BackendKind::Replay`] runs in
//! *calibration-then-replay* mode: before stage 1, every distinct
//! (workload, architecture) pair in the stream is calibrated once on
//! the engine (a [`ReplayExecutor`] records per-configuration trace
//! sets), after which each of the potentially hundreds of thousands of
//! job runs is answered by trace composition in microseconds. Policy
//! *training* (cache misses/refreshes) stays on the engine in both
//! modes — learning episodes need live counter feedback.
//!
//! Same cluster + params + job stream ⇒ byte-identical outcome,
//! regardless of how stage 2 is mapped.

use crate::cache::{CacheDecision, PolicyCache};
use crate::cluster::ClusterSpec;
use crate::dispatch::{DispatchView, Dispatcher};
use crate::job::{JobOutcome, JobSpec};
use crate::metrics::{FleetMetrics, FleetOutcome};
use astro_core::pipeline::{build_static, AstroPipeline, PipelineConfig, TrainedAstro};
use astro_core::replay::ReplayExecutor;
use astro_core::schedule::StaticSchedule;
use astro_exec::executor::{BackendKind, ExecPolicy, ExecRequest, Executor, MachineExecutor};
use astro_exec::machine::MachineParams;
use astro_exec::program::{compile, CompiledProgram};
use astro_exec::time::SimTime;
use astro_hw::boards::BoardSpec;
use astro_ir::Module;
use astro_workloads::{InputSize, Workload};
use std::collections::BTreeMap;

/// How jobs are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyMode {
    /// Every job runs its original binary under GTS with all cores on —
    /// the fleet without Astro.
    Cold,
    /// Jobs run Astro static binaries; schedules come from the shared
    /// policy cache (training on miss, warm refresh on staleness).
    Warm,
}

impl PolicyMode {
    /// Label for reports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyMode::Cold => "cold",
            PolicyMode::Warm => "warm",
        }
    }
}

/// Fleet-level knobs.
#[derive(Clone, Debug)]
pub struct FleetParams {
    /// Input class every job runs.
    pub size: InputSize,
    /// Engine parameters for job and profile runs.
    pub machine: MachineParams,
    /// Execution backend serving profile and job runs (training always
    /// uses the engine). Default: [`BackendKind::Machine`].
    pub backend: BackendKind,
    /// Training configuration for cache misses.
    pub train: PipelineConfig,
    /// Episodes for warm-started staleness refreshes (≤ `train.episodes`
    /// is the point: the snapshot already encodes the policy).
    pub refresh_episodes: usize,
    /// Admission latency guard: a cached schedule is applied to a job
    /// only when its profiled service time on the chosen board is within
    /// this factor of the stock (cold) binary's. Class-keyed policies
    /// transfer across workloads of a class; the guard bounds the
    /// latency tax when the transfer is poor (the job then runs its
    /// stock binary and only the class's well-transferring siblings keep
    /// the energy win). The default of 1.01 admits schedules that
    /// profile as time-neutral (within profiling noise) or faster;
    /// `f64::INFINITY` disables the guard.
    pub latency_guard: f64,
    /// Base seed (profiles and training derive from it).
    pub seed: u64,
}

impl FleetParams {
    /// Millisecond-scale defaults matching the experiment harness: the
    /// 500 ms monitor of §3.2.1 scaled to the synthetic workloads'
    /// runtimes.
    pub fn new(seed: u64) -> Self {
        let machine = MachineParams {
            checkpoint_interval: SimTime::from_micros(400.0),
            balance_interval: SimTime::from_micros(100.0),
            timeslice: SimTime::from_micros(400.0),
            min_config_dwell: SimTime::from_micros(800.0),
            seed,
            ..MachineParams::default()
        };
        FleetParams {
            size: InputSize::Test,
            machine,
            backend: BackendKind::Machine,
            train: PipelineConfig {
                machine,
                episodes: 4,
                model_seeds: 1,
                ..PipelineConfig::default()
            },
            refresh_episodes: 2,
            latency_guard: 1.01,
            seed,
        }
    }
}

/// One board's executed job sequence (stage 2 output).
#[derive(Clone, Debug)]
pub struct BoardRun {
    /// Board index.
    pub board: usize,
    /// Outcomes in execution order.
    pub outcomes: Vec<JobOutcome>,
    /// Total service seconds.
    pub busy_s: f64,
}

/// Run `f(0..n)` sequentially — the trivial stage-2 mapper. Experiment
/// harnesses substitute a parallel mapper (`astro-bench`'s
/// `parallel_map`) with the same contract: results in index order.
pub fn serial_map(n: usize, f: &(dyn Fn(usize) -> BoardRun + Sync)) -> Vec<BoardRun> {
    (0..n).map(f).collect()
}

/// One job as placed by stage 1.
#[derive(Clone)]
struct Assignment {
    job: JobSpec,
    slo_s: f64,
    /// `Some((schedule, version))` in warm mode.
    schedule: Option<(StaticSchedule, u32)>,
}

/// Memoised (workload, architecture, policy-version) service profiles.
/// Version [`ProfileTable::COLD`] is the GTS/original-binary profile.
struct ProfileTable {
    map: BTreeMap<(&'static str, &'static str, u64), (f64, f64)>,
}

impl ProfileTable {
    const COLD: u64 = u64::MAX;

    fn new() -> Self {
        ProfileTable {
            map: BTreeMap::new(),
        }
    }
}

/// The fleet simulator, bound to a cluster.
pub struct FleetSim<'a> {
    /// The boards.
    pub cluster: &'a ClusterSpec,
    /// Knobs.
    pub params: FleetParams,
    /// The replay backend, when [`FleetParams::backend`] asks for one —
    /// owned by the simulator so its calibration cache (a pure function
    /// of (workload, architecture, engine parameters)) is shared across
    /// every run of this simulator instead of re-recorded per scenario.
    replay_exec: Option<ReplayExecutor>,
}

impl<'a> FleetSim<'a> {
    /// A simulator over `cluster`.
    pub fn new(cluster: &'a ClusterSpec, params: FleetParams) -> Self {
        assert!(!cluster.is_empty(), "fleet needs at least one board");
        let replay_exec = match params.backend {
            BackendKind::Machine => None,
            BackendKind::Replay => Some(ReplayExecutor::from_machine(params.machine)),
        };
        FleetSim {
            cluster,
            params,
            replay_exec,
        }
    }

    /// Run `jobs` (arrival order) under `dispatcher` and `mode`, mapping
    /// board execution with [`serial_map`].
    pub fn run(
        &self,
        jobs: &[JobSpec],
        dispatcher: &mut dyn Dispatcher,
        cache: &mut PolicyCache,
        mode: PolicyMode,
    ) -> FleetOutcome {
        self.run_with(jobs, dispatcher, cache, mode, &serial_map)
    }

    /// Like [`FleetSim::run`], with a caller-supplied stage-2 mapper
    /// (e.g. a parallel one). The mapper must return `f(i)` for
    /// `i ∈ 0..n` in index order; any interleaving yields identical
    /// results.
    pub fn run_with(
        &self,
        jobs: &[JobSpec],
        dispatcher: &mut dyn Dispatcher,
        cache: &mut PolicyCache,
        mode: PolicyMode,
        pmap: &dyn Fn(usize, &(dyn Fn(usize) -> BoardRun + Sync)) -> Vec<BoardRun>,
    ) -> FleetOutcome {
        let n_boards = self.cluster.len();

        // The execution backend every profile and job run goes through.
        let machine_exec = MachineExecutor {
            params: self.params.machine,
        };
        let exec: &dyn Executor = match &self.replay_exec {
            Some(r) => r,
            None => &machine_exec,
        };

        // Source modules, one per distinct workload in the stream (the
        // executor contract carries them; replay calibrates from them).
        let mut modules: BTreeMap<&'static str, Module> = BTreeMap::new();
        for job in jobs {
            modules
                .entry(job.workload.name)
                .or_insert_with(|| (job.workload.build)(self.params.size));
        }

        // Calibration-then-replay: record every (workload, architecture)
        // trace set up front, in deterministic order, so stage 2 is pure
        // composition no matter which thread touches a key first.
        // Already-calibrated keys (earlier runs of this simulator) are
        // cache hits.
        if let Some(replay) = &self.replay_exec {
            for key in self.cluster.arch_keys() {
                let board = self.cluster.representative_board(key);
                for (name, module) in &modules {
                    replay.calibrate(name, module, board);
                }
            }
        }

        let mut profiles = ProfileTable::new();
        let mut est_busy = vec![0.0f64; n_boards];
        let mut assigned = vec![0usize; n_boards];
        let mut plan: Vec<Vec<Assignment>> = vec![Vec::new(); n_boards];
        let mut train_time_s = 0.0;
        let mut train_energy_j = 0.0;
        let mut guard_bypasses = 0u64;

        // Stage 1: admission + dispatch + policy resolution.
        for job in jobs {
            let module = &modules[job.workload.name];
            let slo_s =
                job.slo_tightness * self.best_cold_wall(exec, &mut profiles, &job.workload, module);
            let mut est_service = vec![0.0f64; n_boards];
            let mut est_energy = vec![0.0f64; n_boards];
            let mut warm = vec![false; n_boards];
            for b in 0..n_boards {
                let arch = self.cluster.arch_key(b);
                let is_warm = mode == PolicyMode::Warm && cache.is_warm(job.taxon, arch);
                let (wall, energy) = if is_warm {
                    let e = cache.peek(job.taxon, arch).expect("warm entry exists");
                    self.profile(
                        exec,
                        &mut profiles,
                        &job.workload,
                        module,
                        b,
                        e.version as u64,
                        Some(e.schedule),
                    )
                } else {
                    self.profile(
                        exec,
                        &mut profiles,
                        &job.workload,
                        module,
                        b,
                        ProfileTable::COLD,
                        None,
                    )
                };
                est_service[b] = wall;
                est_energy[b] = energy;
                warm[b] = is_warm;
            }
            let view = DispatchView {
                cluster: self.cluster,
                now_s: job.arrival_s,
                est_busy_until_s: &est_busy,
                assigned: &assigned,
                est_service_s: &est_service,
                est_energy_j: &est_energy,
                warm: &warm,
            };
            let b = dispatcher.pick(&view, job);
            assert!(b < n_boards, "dispatcher picked board {b} of {n_boards}");

            // Policy resolution. Training is *asynchronous*: like the
            // paper's compile-time pipeline, it happens off the serving
            // path (a policy server replaying the tenant's program), so
            // the triggering job runs its stock binary and the artefact
            // serves later arrivals. Its time and energy are still
            // accounted against the fleet.
            let schedule = match mode {
                PolicyMode::Cold => None,
                PolicyMode::Warm => {
                    let arch = self.cluster.arch_key(b);
                    match cache.lookup(job.taxon, arch) {
                        CacheDecision::Hit(s, v) => Some((s, v)),
                        CacheDecision::Stale(snap) => {
                            let (trained, t, e) =
                                self.train(job, b, Some(&snap), self.params.refresh_episodes);
                            train_time_s += t;
                            train_energy_j += e;
                            let snapshot = trained.hooks.agent.snapshot();
                            cache.refresh(job.taxon, arch, trained.static_schedule, snapshot);
                            None
                        }
                        CacheDecision::Miss => {
                            let (trained, t, e) =
                                self.train(job, b, None, self.params.train.episodes);
                            train_time_s += t;
                            train_energy_j += e;
                            let snapshot = trained.hooks.agent.snapshot();
                            cache.insert(job.taxon, arch, trained.static_schedule, snapshot);
                            None
                        }
                    }
                }
            };

            // Admission latency guard: class policies transfer across a
            // class's workloads, but not always gracefully; when this
            // job's profiled service under the schedule regresses past
            // the guard, it runs its stock binary instead.
            let (schedule, svc_est) = match schedule {
                None => (None, est_service[b]),
                Some((st, v)) => {
                    let (cold_wall, _) = self.profile(
                        exec,
                        &mut profiles,
                        &job.workload,
                        module,
                        b,
                        ProfileTable::COLD,
                        None,
                    );
                    let (warm_wall, _) = self.profile(
                        exec,
                        &mut profiles,
                        &job.workload,
                        module,
                        b,
                        v as u64,
                        Some(st),
                    );
                    if warm_wall > cold_wall * self.params.latency_guard {
                        guard_bypasses += 1;
                        (None, cold_wall)
                    } else {
                        (Some((st, v)), warm_wall)
                    }
                }
            };

            est_busy[b] = est_busy[b].max(job.arrival_s) + svc_est;
            assigned[b] += 1;
            plan[b].push(Assignment {
                job: *job,
                slo_s,
                schedule,
            });
        }

        // Stage 2: execute each board's sequence (parallelisable).
        let plan = &plan;
        let modules = &modules;
        let runs = pmap(n_boards, &|b| self.run_board(exec, b, &plan[b], modules));
        assert_eq!(runs.len(), n_boards, "mapper must cover every board");

        // Stage 3: aggregate in deterministic order.
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
        let mut busy = vec![0.0f64; n_boards];
        for r in &runs {
            busy[r.board] = r.busy_s;
            outcomes.extend(r.outcomes.iter().cloned());
        }
        outcomes.sort_by_key(|o| o.id);
        let metrics = FleetMetrics::from_outcomes(&outcomes, &busy, train_energy_j);
        FleetOutcome {
            metrics,
            outcomes,
            cache: cache.stats,
            guard_bypasses,
            train_time_s,
            train_energy_j,
            backend: self.params.backend.name(),
            calibrations: self
                .replay_exec
                .as_ref()
                .map(|r| r.stats().calibrations)
                .unwrap_or(0),
        }
    }

    // ---- stage-1 helpers ----------------------------------------------------

    /// Unloaded cold service time on the fastest architecture (the SLO
    /// reference point).
    fn best_cold_wall(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        w: &Workload,
        module: &Module,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for key in self.cluster.arch_keys() {
            let b = self.cluster.representative_board_idx(key);
            let (wall, _) = self.profile(exec, profiles, w, module, b, ProfileTable::COLD, None);
            best = best.min(wall);
        }
        best
    }

    /// Profiled (wall, energy) of `w` on board `b` under the given
    /// policy version: the mean of three executor runs at distinct seeds
    /// (the ±5% service jitter would otherwise dominate guard decisions
    /// near the boundary), memoised per distinct key.
    #[allow(clippy::too_many_arguments)]
    fn profile(
        &self,
        exec: &dyn Executor,
        profiles: &mut ProfileTable,
        w: &Workload,
        module: &Module,
        b: usize,
        version: u64,
        schedule: Option<StaticSchedule>,
    ) -> (f64, f64) {
        const PROFILE_SAMPLES: u64 = 3;
        let arch = self.cluster.arch_key(b);
        if let Some(&hit) = profiles.map.get(&(w.name, arch, version)) {
            return hit;
        }
        let spec = &self.cluster.boards[b];
        let base_seed = self
            .params
            .seed
            .wrapping_add(fnv(w.name))
            .wrapping_add(fnv(arch).rotate_left(17));
        let full = spec.config_space().full();
        let (program, policy) = match schedule {
            None => (compile(module).expect("workload compiles"), ExecPolicy::Gts),
            Some(st) => (
                compile(&build_static(module, &st)).expect("static build compiles"),
                ExecPolicy::StaticTable(st.as_table()),
            ),
        };
        let mut wall = 0.0;
        let mut energy = 0.0;
        for k in 0..PROFILE_SAMPLES {
            let seed = base_seed.wrapping_add(k.wrapping_mul(0x9E37_79B9));
            let r = exec.execute(&ExecRequest {
                workload: w.name,
                module,
                program: &program,
                board: spec,
                config: full,
                policy,
                seed,
            });
            wall += r.wall_time_s;
            energy += r.energy_j;
        }
        let out = (
            wall / PROFILE_SAMPLES as f64,
            energy / PROFILE_SAMPLES as f64,
        );
        profiles.map.insert((w.name, arch, version), out);
        out
    }

    /// (Re)train a policy for `job`'s class on board `b`'s architecture.
    /// Returns the trained artefacts plus the wall time and energy of
    /// the learning episodes (charged to the triggering job). Always
    /// runs on the cycle-accurate engine: learning needs live counter
    /// feedback no trace can substitute.
    fn train(
        &self,
        job: &JobSpec,
        b: usize,
        warm: Option<&astro_rl::qlearn::PolicySnapshot>,
        episodes: usize,
    ) -> (TrainedAstro, f64, f64) {
        let spec: &BoardSpec = &self.cluster.boards[b];
        let mut cfg = self.params.train.clone();
        cfg.episodes = episodes.max(1);
        cfg.machine.seed = self
            .params
            .seed
            .wrapping_add(fnv(&job.taxon.key()))
            .wrapping_add(fnv(self.cluster.arch_key(b)).rotate_left(29));
        let pipe = AstroPipeline::new(spec, cfg);
        let module = (job.workload.build)(self.params.size);
        let trained = pipe.train_warm(&module, warm);
        let t: f64 = trained.learning_runs.iter().map(|r| r.wall_time_s).sum();
        let e: f64 = trained.learning_runs.iter().map(|r| r.energy_j).sum();
        (trained, t, e)
    }

    // ---- stage 2 ------------------------------------------------------------

    /// Execute one board's assignment sequence through the backend,
    /// memoising compiled program variants per (workload, version).
    fn run_board(
        &self,
        exec: &dyn Executor,
        b: usize,
        assignments: &[Assignment],
        modules: &BTreeMap<&'static str, Module>,
    ) -> BoardRun {
        let spec = &self.cluster.boards[b];
        let full = spec.config_space().full();
        let mut cold_progs: BTreeMap<&'static str, CompiledProgram> = BTreeMap::new();
        let mut warm_progs: BTreeMap<(&'static str, u32), CompiledProgram> = BTreeMap::new();

        let mut free_at = 0.0f64;
        let mut busy_s = 0.0f64;
        let mut outcomes = Vec::with_capacity(assignments.len());
        for a in assignments {
            let w = &a.job.workload;
            let module = &modules[w.name];
            let r = match &a.schedule {
                None => {
                    // Stock binary under GTS (cold mode, cache misses
                    // awaiting the async training, guard bypasses).
                    let prog = cold_progs
                        .entry(w.name)
                        .or_insert_with(|| compile(module).expect("workload compiles"));
                    exec.execute(&ExecRequest {
                        workload: w.name,
                        module,
                        program: prog,
                        board: spec,
                        config: full,
                        policy: ExecPolicy::Gts,
                        seed: a.job.seed,
                    })
                }
                Some((st, version)) => {
                    let prog = warm_progs.entry((w.name, *version)).or_insert_with(|| {
                        compile(&build_static(module, st)).expect("static build compiles")
                    });
                    exec.execute(&ExecRequest {
                        workload: w.name,
                        module,
                        program: prog,
                        board: spec,
                        config: full,
                        policy: ExecPolicy::StaticTable(st.as_table()),
                        seed: a.job.seed,
                    })
                }
            };
            let start = a.job.arrival_s.max(free_at);
            let service = r.wall_time_s;
            let finish = start + service;
            free_at = finish;
            busy_s += service;
            outcomes.push(JobOutcome {
                id: a.job.id,
                workload: w.name,
                class: a.job.class(),
                board: b,
                arrival_s: a.job.arrival_s,
                start_s: start,
                finish_s: finish,
                service_s: service,
                energy_j: r.energy_j,
                slo_s: a.slo_s,
            });
        }
        BoardRun {
            board: b,
            outcomes,
            busy_s,
        }
    }
}

/// Deterministic string hash (FNV-1a): profile/training seeds must not
/// depend on process-level hasher state.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::dispatch::{LeastLoaded, PhaseAware};

    fn jobs(n: usize, seed: u64) -> Vec<JobSpec> {
        let pool: Vec<Workload> = ["swaptions", "bfs"]
            .iter()
            .map(|name| astro_workloads::by_name(name).unwrap())
            .collect();
        ArrivalProcess::Poisson {
            rate_jobs_per_s: 2000.0,
        }
        .generate(n, &pool, InputSize::Test, (4.0, 8.0), seed)
    }

    #[test]
    fn cold_fleet_completes_all_jobs_deterministically() {
        let cluster = ClusterSpec::heterogeneous(2);
        let sim = FleetSim::new(&cluster, FleetParams::new(5));
        let stream = jobs(6, 3);
        let mut cache = PolicyCache::new(0);
        let a = sim.run(&stream, &mut LeastLoaded, &mut cache, PolicyMode::Cold);
        let b = sim.run(&stream, &mut LeastLoaded, &mut cache, PolicyMode::Cold);

        assert_eq!(a.outcomes.len(), 6);
        for (i, o) in a.outcomes.iter().enumerate() {
            assert_eq!(o.id as usize, i);
            assert!(o.board < 2);
            assert!(o.start_s >= o.arrival_s);
            assert!(o.finish_s > o.start_s);
            assert!(o.energy_j > 0.0);
            assert!(o.slo_s > 0.0);
        }
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.finish_s, y.finish_s);
            assert_eq!(x.energy_j, y.energy_j);
            assert_eq!(x.board, y.board);
        }
        assert!(a
            .metrics
            .board_util
            .iter()
            .all(|&u| (0.0..=1.0).contains(&u)));
        assert_eq!(a.cache, crate::cache::CacheStats::default());
        assert_eq!(a.train_time_s, 0.0);
        assert_eq!(a.backend, "machine");
        assert_eq!(a.calibrations, 0);
    }

    #[test]
    fn parallel_and_serial_mappers_agree() {
        let cluster = ClusterSpec::heterogeneous(3);
        let sim = FleetSim::new(&cluster, FleetParams::new(9));
        let stream = jobs(6, 1);
        let mut cache = PolicyCache::new(0);
        let serial = sim.run(&stream, &mut LeastLoaded, &mut cache, PolicyMode::Cold);
        // A deliberately out-of-order mapper with the index-order contract.
        let reversed = |n: usize, f: &(dyn Fn(usize) -> BoardRun + Sync)| {
            let mut v: Vec<BoardRun> = (0..n).rev().map(f).collect();
            v.reverse();
            v
        };
        let mapped = sim.run_with(
            &stream,
            &mut LeastLoaded,
            &mut cache,
            PolicyMode::Cold,
            &reversed,
        );
        for (x, y) in serial.outcomes.iter().zip(&mapped.outcomes) {
            assert_eq!(x.finish_s, y.finish_s);
            assert_eq!(x.board, y.board);
        }
    }

    #[test]
    fn warm_mode_trains_once_then_hits() {
        let cluster = ClusterSpec::homogeneous(2, BoardSpec::odroid_xu4());
        let mut params = FleetParams::new(11);
        params.train.episodes = 1;
        let sim = FleetSim::new(&cluster, params);
        // Single-workload pool → a single (class, arch) cache line.
        let pool = vec![astro_workloads::by_name("swaptions").unwrap()];
        let stream = ArrivalProcess::Poisson {
            rate_jobs_per_s: 2000.0,
        }
        .generate(5, &pool, InputSize::Test, (6.0, 6.0), 2);
        let mut cache = PolicyCache::new(0);
        let out = sim.run(&stream, &mut PhaseAware, &mut cache, PolicyMode::Warm);

        assert_eq!(out.cache.misses, 1, "one cold training");
        assert_eq!(out.cache.hits, 4, "every later tenant reuses it");
        assert!(out.train_time_s > 0.0);
        assert!(out.train_energy_j > 0.0);
        assert_eq!(cache.len(), 1);
        // Training energy is accounted in the fleet total.
        let job_energy: f64 = out.outcomes.iter().map(|o| o.energy_j).sum();
        assert!(out.metrics.total_energy_j > job_energy);
    }

    #[test]
    fn impossible_latency_guard_bypasses_every_schedule() {
        let cluster = ClusterSpec::homogeneous(2, BoardSpec::odroid_xu4());
        let mut params = FleetParams::new(11);
        params.train.episodes = 1;
        params.latency_guard = 0.0; // nothing can beat a zero budget
        let sim = FleetSim::new(&cluster, params);
        let pool = vec![astro_workloads::by_name("swaptions").unwrap()];
        let stream = ArrivalProcess::Poisson {
            rate_jobs_per_s: 2000.0,
        }
        .generate(4, &pool, InputSize::Test, (6.0, 6.0), 2);
        let mut cache = PolicyCache::new(0);
        let out = sim.run(&stream, &mut PhaseAware, &mut cache, PolicyMode::Warm);
        // The miss job runs cold with no schedule to guard; the three
        // hits all fail the impossible guard.
        assert_eq!(out.guard_bypasses, 3);
        assert_eq!(out.cache.misses, 1, "the class is still trained once");
    }

    #[test]
    fn staleness_triggers_warm_refresh() {
        let cluster = ClusterSpec::homogeneous(1, BoardSpec::odroid_xu4());
        let mut params = FleetParams::new(21);
        params.train.episodes = 1;
        params.refresh_episodes = 1;
        let sim = FleetSim::new(&cluster, params);
        let pool = vec![astro_workloads::by_name("bfs").unwrap()];
        let stream = ArrivalProcess::Poisson {
            rate_jobs_per_s: 2000.0,
        }
        .generate(4, &pool, InputSize::Test, (6.0, 6.0), 2);
        let mut cache = PolicyCache::new(2);
        let out = sim.run(&stream, &mut LeastLoaded, &mut cache, PolicyMode::Warm);
        assert_eq!(out.cache.misses, 1);
        assert!(out.cache.stale_refreshes >= 1, "{:?}", out.cache);
    }

    #[test]
    fn replay_backend_is_deterministic_and_completes() {
        let cluster = ClusterSpec::heterogeneous(2);
        let mut params = FleetParams::new(5);
        params.backend = BackendKind::Replay;
        let sim = FleetSim::new(&cluster, params);
        let stream = jobs(8, 3);
        let mut cache = PolicyCache::new(0);
        let a = sim.run(&stream, &mut LeastLoaded, &mut cache, PolicyMode::Cold);
        let b = sim.run(&stream, &mut LeastLoaded, &mut cache, PolicyMode::Cold);
        assert_eq!(a.outcomes.len(), 8);
        assert_eq!(a.backend, "replay");
        // Two workloads × two architectures, calibrated once up front.
        assert_eq!(a.calibrations, 4);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.finish_s, y.finish_s);
            assert_eq!(x.energy_j, y.energy_j);
            assert_eq!(x.board, y.board);
        }
        for o in &a.outcomes {
            assert!(o.service_s > 0.0 && o.energy_j > 0.0);
        }
    }

    #[test]
    fn replay_backend_tracks_machine_backend() {
        // Same stream, both backends: totals must agree within the
        // replay fidelity tolerance (each job within 25%; compare the
        // aggregate, which averages the per-seed wobble out).
        let cluster = ClusterSpec::heterogeneous(2);
        let stream = jobs(8, 7);
        let mut machine_params = FleetParams::new(5);
        machine_params.backend = BackendKind::Machine;
        let mut replay_params = FleetParams::new(5);
        replay_params.backend = BackendKind::Replay;
        let mut cache = PolicyCache::new(0);
        let exact = FleetSim::new(&cluster, machine_params).run(
            &stream,
            &mut LeastLoaded,
            &mut cache,
            PolicyMode::Cold,
        );
        let mut cache = PolicyCache::new(0);
        let fast = FleetSim::new(&cluster, replay_params).run(
            &stream,
            &mut LeastLoaded,
            &mut cache,
            PolicyMode::Cold,
        );
        let d_energy = (fast.metrics.total_energy_j - exact.metrics.total_energy_j).abs()
            / exact.metrics.total_energy_j;
        assert!(d_energy < 0.25, "energy {:.1}% off", d_energy * 100.0);
        let exact_svc: f64 = exact.outcomes.iter().map(|o| o.service_s).sum();
        let fast_svc: f64 = fast.outcomes.iter().map(|o| o.service_s).sum();
        let d_svc = (fast_svc - exact_svc).abs() / exact_svc;
        assert!(d_svc < 0.25, "service {:.1}% off", d_svc * 100.0);
    }
}
