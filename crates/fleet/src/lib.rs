//! # astro-fleet — multi-board, multi-tenant co-scheduling
//!
//! The paper's pipeline learns a schedule for one program on one board.
//! This crate is the fleet layer above it: many tenant jobs arriving
//! over time ([`arrival`]), co-scheduled across a cluster of independent
//! big.LITTLE boards ([`cluster`]) by an admission/dispatch policy
//! ([`dispatch`]), each job executed through `astro-exec` ([`sim`]),
//! with learned Astro policies shared and warm-started across tenants
//! through a taxonomy-keyed policy cache ([`cache`]) — the regime
//! Octopus-Man (Petrucci et al., HPCA'15) targets for datacenter QoS,
//! with Astro's "compile once, schedule everywhere" story supplying the
//! per-job policies. [`metrics`] aggregates throughput, latency
//! percentiles vs SLO, cluster energy and per-board utilisation.
//!
//! Everything is seed-deterministic: the same cluster, parameters and
//! job stream produce byte-identical outcomes regardless of how board
//! execution is mapped onto OS threads.
//!
//! Execution goes through the pluggable
//! [`Executor`](astro_exec::executor::Executor) contract: the default
//! [`BackendKind::Machine`] interprets every job cycle-accurately, while
//! [`BackendKind::Replay`] calibrates per-configuration trace sets once
//! per (workload, architecture) and then answers each job by trace
//! composition — the fast tier that scales `fleet_sim` to hundreds of
//! thousands of jobs.

pub mod arrival;
pub mod cache;
pub mod cluster;
pub mod dispatch;
pub mod job;
pub mod metrics;
pub mod sim;

pub use arrival::ArrivalProcess;
pub use astro_exec::executor::BackendKind;
pub use cache::{CacheDecision, CacheStats, PolicyCache, PolicyEntry};
pub use cluster::ClusterSpec;
pub use dispatch::{DispatchView, Dispatcher, EnergyAware, LeastLoaded, PhaseAware};
pub use job::{classify_module, taxon_of, JobClass, JobOutcome, JobSpec, Taxon};
pub use metrics::{percentile, FleetMetrics, FleetOutcome};
pub use sim::{serial_map, BoardRun, FleetParams, FleetSim, PolicyMode};
