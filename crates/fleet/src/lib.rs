//! # astro-fleet — multi-board, multi-tenant co-scheduling
//!
//! The paper's pipeline learns a schedule for one program on one board.
//! This crate is the fleet layer above it: many tenant jobs arriving
//! over time ([`arrival`]), co-scheduled across a cluster of independent
//! big.LITTLE boards ([`cluster`]) by an admission/dispatch policy
//! ([`dispatch`]) invoked *at arrival time* by a discrete-event kernel
//! ([`kernel`]) against live, observable cluster state ([`state`]) —
//! per-board queues, in-flight taxa, liveness, utilisation. Learned
//! Astro policies are shared and warm-started across tenants through a
//! taxonomy-keyed policy cache ([`cache`]); [`metrics`] aggregates
//! throughput, latency percentiles vs SLO, cluster energy and per-board
//! utilisation.
//!
//! The kernel expresses what a batch planner cannot: **online
//! dispatch** with live queue feedback ([`DispatchMode::Online`]),
//! **preemptive redispatch** (queued jobs predicted to miss their SLO
//! migrate at monitor ticks, paying a configurable cost) and **board
//! churn** (boards leave/join mid-run; queued work is redistributed or
//! explicitly dropped). [`DispatchMode::Oracle`] reproduces the earlier
//! three-stage batch semantics through the same loop, so historical
//! comparisons stay meaningful.
//!
//! Everything is seed-deterministic: the same cluster, parameters, job
//! stream and [`Scenario`] produce byte-identical outcomes.
//!
//! The kernel's state is **sharded** ([`shard`]): boards are
//! partitioned into contiguous shards, each owning its slice of board
//! state and its own completion event queue, advanced independently
//! between control events and folded back at a barrier merge — so
//! board count is no longer a sequential bottleneck and results stay
//! byte-identical for *every* shard count (`shards = 1` is the PR 4
//! single-loop kernel, byte-for-byte). On top of the kernel,
//! completion events feed observed service times into a
//! per-(taxonomy, architecture) EWMA correction layer ([`feedback`])
//! that dispatchers consult on every subsequent decision — the
//! paper's "observed, not assumed, costs" principle applied at fleet
//! scale.
//!
//! The kernel carries a deterministic flight recorder ([`telemetry`]):
//! structured Chrome-trace spans, streaming quantile digests and
//! per-tick gauge windows over *sim* time, plus wall-clock phase
//! profiling — zero-cost when off, and guaranteed never to perturb
//! outcomes (fingerprints are byte-identical with tracing on or off
//! for every shard count).
//!
//! Execution goes through the pluggable
//! [`Executor`](astro_exec::executor::Executor) contract: the default
//! [`BackendKind::Machine`] interprets every job cycle-accurately, while
//! [`BackendKind::Replay`] calibrates per-configuration trace sets once
//! per (workload, architecture) and then answers each job by trace
//! composition — the fast tier that scales the kernel to a million
//! jobs over hundreds of boards (see the `fleet_million` figure).

#![warn(missing_docs)]

pub mod arrival;
pub mod cache;
pub mod chaos;
pub mod checkpoint;
pub mod cluster;
pub mod dispatch;
pub mod feedback;
mod index;
pub mod job;
pub mod kernel;
pub mod metrics;
pub mod shard;
pub mod sim;
pub mod state;
pub mod telemetry;

pub use arrival::{
    write_trace, ArrivalCursor, ArrivalProcess, GenCursor, SliceCursor, TraceCursor,
};
pub use astro_exec::executor::BackendKind;
pub use cache::{CacheDecision, CacheStats, PolicyCache, PolicyEntry};
pub use chaos::{ChaosClause, ChaosSchedule, ChaosStats, ClauseStats, TrafficClause, MAX_SLOWDOWN};
pub use checkpoint::{CheckpointError, CursorState};
pub use cluster::ClusterSpec;
pub use dispatch::{Dispatcher, EnergyAware, JobEstimates, LeastLoaded, PhaseAware};
pub use feedback::{FeedbackStats, ServiceFeedback};
pub use job::{classify_module, taxon_of, JobClass, JobOutcome, JobSpec, Taxon};
pub use kernel::{ChurnEvent, Event, EventKind, EventQueue, KernelStats, ResidentKernel, Scenario};
pub use metrics::{percentile, FleetMetrics, FleetOutcome, StreamSummary, STREAM_WINDOW};
pub use shard::{ShardMsg, ShardSet};
pub use sim::{chunked_map, serial_map, FleetParams, FleetSim, PolicyMode};
pub use state::{
    BoardState, ClusterState, DispatchMode, DropReason, DroppedJob, InFlight, QueuedJob,
};
pub use telemetry::{
    validate_json, FlightRecorder, PhaseProfile, QuantileDigest, TraceEvent, TraceLevel,
    WindowSample, DIGEST_GROWTH,
};
