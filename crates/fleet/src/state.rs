//! Live cluster state: what the event kernel maintains and what online
//! dispatchers observe.
//!
//! The batch simulator of earlier revisions handed dispatchers a
//! precomputed view (estimated backlogs accumulated during a single
//! sequential planning pass). The event kernel instead exposes *this*
//! structure — per-board queues, the in-flight job, liveness, and
//! utilisation so far — updated by arrival/completion/churn events as
//! they happen. [`DispatchMode`] selects which backlog estimate a
//! dispatcher sees:
//!
//! * [`DispatchMode::Oracle`] reproduces the batch semantics: each
//!   board's backlog is a write-only accumulator of profiled service
//!   estimates, never corrected by completions. Same cluster, params
//!   and stream ⇒ the same placements the three-stage batch produced.
//! * [`DispatchMode::Online`] derives the backlog from live state: the
//!   in-flight job's *profiled* remaining time (observable — the kernel
//!   never leaks the true completion instant it has already scheduled)
//!   plus the profiled service of everything queued. Completed work
//!   drops out immediately, so the estimate tracks reality through
//!   bursts, estimate error and board churn.

use crate::cluster::ClusterSpec;
use crate::index::{BoardClass, DispatchIndex};
use crate::job::{JobOutcome, JobSpec, Taxon};
use astro_core::schedule::StaticSchedule;
use std::cell::Cell;
use std::collections::VecDeque;

/// What backlog estimate dispatchers observe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchMode {
    /// Batch-equivalent: profiled-estimate accumulators, blind to
    /// completions and churn (the earlier three-stage semantics).
    Oracle,
    /// Live: backlog recomputed from the actual queue and in-flight
    /// state at every decision.
    Online,
}

impl DispatchMode {
    /// Label for reports.
    pub fn name(self) -> &'static str {
        match self {
            DispatchMode::Oracle => "oracle",
            DispatchMode::Online => "online",
        }
    }
}

/// Why the kernel dropped a job instead of completing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropReason {
    /// No board was up to take the job (arrival or churn
    /// redistribution with the whole fleet down).
    NoBoardUp,
    /// The job exhausted the scenario's churn-redispatch cap
    /// ([`Scenario::max_redispatches`](crate::kernel::Scenario)) while
    /// its board was down.
    MigrationCap,
}

impl DropReason {
    /// Stable label for reports.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::NoBoardUp => "no-board-up",
            DropReason::MigrationCap => "migration-cap",
        }
    }
}

/// One dropped job: which, and why. Dropped jobs have no
/// [`JobOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DroppedJob {
    /// The job's stream id.
    pub id: u32,
    /// Why it was dropped.
    pub reason: DropReason,
}

/// A job the kernel has dispatched to a board but not yet started.
#[derive(Clone, Debug)]
pub struct QueuedJob {
    /// The job.
    pub job: JobSpec,
    /// Resolved latency SLO, seconds.
    pub slo_s: f64,
    /// `Some((schedule, version))` when a cached Astro policy applies.
    pub schedule: Option<(StaticSchedule, u32)>,
    /// Architecture key the schedule was resolved for (a migration to a
    /// different architecture must re-resolve or run cold).
    pub sched_arch: &'static str,
    /// Service estimate on the board currently queuing it (excludes
    /// migration penalties). With observed-service feedback enabled
    /// this is the profiled estimate times the learned correction;
    /// otherwise it equals [`QueuedJob::profiled_s`].
    pub est_service_s: f64,
    /// Uncorrected profiled service estimate — the reference the
    /// feedback layer compares observed service against.
    pub profiled_s: f64,
    /// Accumulated migration cost, added to the real service time.
    pub penalty_s: f64,
    /// Times this job has been migrated (preemption + churn).
    pub migrations: u32,
    /// Times this job was redistributed by board *churn* specifically —
    /// the counter [`Scenario::max_redispatches`](crate::kernel::Scenario)
    /// caps. Preemptive migrations do not count here (though both
    /// kinds of move count towards the total in
    /// [`QueuedJob::migrations`], which is what `max_migrations`
    /// gates — the PR 4 semantics).
    pub redispatches: u32,
}

impl QueuedJob {
    /// Estimated service including accumulated migration penalties.
    #[inline]
    pub fn est_total_s(&self) -> f64 {
        self.est_service_s + self.penalty_s
    }
}

/// The job a board is currently executing. The true completion time is
/// kernel-private (a scheduled event); dispatchers only see the
/// profiled estimate.
#[derive(Clone, Debug)]
pub struct InFlight {
    /// Stream id.
    pub id: u32,
    /// Taxonomy of the running job (observable co-location signal).
    pub taxon: Taxon,
    /// When service began, seconds.
    pub start_s: f64,
    /// `start + estimate` — the observable finish prediction.
    pub est_finish_s: f64,
    /// Uncorrected profiled service estimate, carried so the
    /// completion event can feed the observed/profiled ratio to the
    /// feedback layer.
    pub profiled_s: f64,
    /// True service time of the run itself, excluding migration
    /// penalties — what the feedback layer observes.
    pub raw_service_s: f64,
    /// The resolved outcome, revealed at the completion event.
    pub(crate) outcome: JobOutcome,
}

/// One board's live state.
///
/// The dispatched-but-not-started queue is private: every mutation
/// goes through [`BoardState::enqueue`] / [`BoardState::pop_next`] /
/// `take_queued` / `set_queued` so the
/// board's queue revision counter stays honest — the busy-until memo
/// below is validated against it.
#[derive(Clone, Debug)]
pub struct BoardState {
    /// Is the board accepting and executing work? Writes go through
    /// [`ClusterState::set_up`], which keeps the dense placeability
    /// array in sync.
    pub(crate) up: bool,
    /// Dispatched-but-not-started jobs, FIFO.
    queue: VecDeque<QueuedJob>,
    /// Bumped on every queue mutation; the busy-until memo is valid
    /// only while its fill epoch equals this.
    queue_epoch: u64,
    /// Epoch `busy_until_from` last filled the memo at
    /// (starts behind `queue_epoch`, i.e. invalid).
    memo_epoch: Cell<u64>,
    /// Bit pattern of the fold base the memo was filled from. The
    /// base bakes in `now_s` and the in-flight estimate, so comparing
    /// bits catches both moving between queries.
    memo_base: Cell<u64>,
    /// The memoised fold result.
    memo_value: Cell<f64>,
    /// The job in service, if any.
    pub in_flight: Option<InFlight>,
    /// Jobs ever dispatched here (including later migrated away).
    pub dispatched: usize,
    /// Jobs completed here.
    pub completed: usize,
    /// Accumulated service seconds.
    pub busy_s: f64,
    /// Composed thermal-throttle slowdown applied to the service time
    /// of every job *started* while it holds (1.0 = full speed). Only
    /// control-plane chaos events change it, so it is constant between
    /// control timestamps — the shard-invariance requirement.
    pub slowdown: f64,
    /// Active throttle windows as `(clause index, factor)`, insertion
    /// order; [`BoardState::recompute_slowdown`] folds them.
    pub(crate) throttles: Vec<(u32, f64)>,
    /// Overlapping dispatch-blackout windows currently covering the
    /// board (0 = placeable whenever up).
    pub(crate) blackouts: u32,
    /// Jobs that began service here with `slowdown > 1` (chaos
    /// accounting, summed into
    /// [`ChaosStats`](crate::chaos::ChaosStats) at run end).
    pub(crate) throttled_starts: u64,
    /// Oracle-mode backlog accumulator (batch stage-1 semantics).
    pub(crate) oracle_busy_until_s: f64,
}

impl BoardState {
    fn new() -> Self {
        BoardState {
            up: true,
            queue: VecDeque::new(),
            queue_epoch: 1,
            memo_epoch: Cell::new(0),
            memo_base: Cell::new(0),
            memo_value: Cell::new(0.0),
            in_flight: None,
            dispatched: 0,
            completed: 0,
            busy_s: 0.0,
            slowdown: 1.0,
            throttles: Vec::new(),
            blackouts: 0,
            throttled_starts: 0,
            oracle_busy_until_s: 0.0,
        }
    }

    /// Dispatched-but-not-started jobs, queue order.
    pub fn queued(&self) -> impl Iterator<Item = &QueuedJob> {
        self.queue.iter()
    }

    /// Dispatched-but-not-started jobs on this board.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Is the dispatch queue empty?
    #[inline]
    pub fn queue_is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Append `job` to the queue. The busy-until memo extends in
    /// place when it is live: the fold is left-to-right, and
    /// appending one term to a left fold produces bitwise the fold
    /// over the longer queue — so back-to-back arrivals on a busy
    /// board never re-walk the queue. Public so harnesses (the
    /// `arena_enqueue_dequeue` micro-benchmark) can exercise the
    /// queue-arena hot path directly; both mutators keep the memo
    /// bookkeeping consistent, so outside use cannot corrupt state.
    pub fn enqueue(&mut self, job: QueuedJob) {
        let memo_live = self.memo_epoch.get() == self.queue_epoch;
        if memo_live {
            self.memo_value
                .set(self.memo_value.get() + job.est_total_s());
        }
        self.queue.push_back(job);
        self.queue_epoch += 1;
        if memo_live {
            self.memo_epoch.set(self.queue_epoch);
        }
    }

    /// Pop the next queued job (service order). Invalidates the
    /// busy-until memo: removing the *front* term changes the fold's
    /// shape, and re-associating floating-point sums is not bitwise
    /// stable — the next query re-folds.
    pub fn pop_next(&mut self) -> Option<QueuedJob> {
        self.queue_epoch += 1;
        self.queue.pop_front()
    }

    /// Take the whole queue (churn redispatch), leaving it empty.
    pub(crate) fn take_queued(&mut self) -> VecDeque<QueuedJob> {
        self.queue_epoch += 1;
        std::mem::take(&mut self.queue)
    }

    /// Replace the queue wholesale (preemption rebuild).
    pub(crate) fn set_queued(&mut self, queue: VecDeque<QueuedJob>) {
        self.queue_epoch += 1;
        self.queue = queue;
    }

    /// Left fold of the queued estimates from `base`, memoised per
    /// `(queue epoch, base bits)`. A hit returns bitwise what the
    /// re-fold would: the fold is a pure function of the base bits
    /// and the queue contents, both pinned by the key.
    #[inline]
    fn busy_until_from(&self, base: f64) -> f64 {
        if self.memo_epoch.get() == self.queue_epoch && self.memo_base.get() == base.to_bits() {
            return self.memo_value.get();
        }
        let mut t = base;
        for q in &self.queue {
            t += q.est_total_s();
        }
        self.memo_base.set(base.to_bits());
        self.memo_value.set(t);
        self.memo_epoch.set(self.queue_epoch);
        t
    }

    /// Serialise this board for a kernel checkpoint. The busy-until
    /// memo and queue epoch are *not* written: the memo is a pure cache
    /// (a fresh board refolds to bitwise the same value) and the epoch
    /// only orders memo validity.
    pub(crate) fn encode(&self, enc: &mut crate::checkpoint::Enc) {
        enc.bool(self.up);
        enc.usize(self.queue.len());
        for q in &self.queue {
            crate::checkpoint::enc_queued_job(enc, q);
        }
        match &self.in_flight {
            None => enc.bool(false),
            Some(f) => {
                enc.bool(true);
                enc.u32(f.id);
                crate::checkpoint::enc_taxon(enc, f.taxon);
                enc.f64(f.start_s);
                enc.f64(f.est_finish_s);
                enc.f64(f.profiled_s);
                enc.f64(f.raw_service_s);
                crate::checkpoint::enc_outcome(enc, &f.outcome);
            }
        }
        enc.usize(self.dispatched);
        enc.usize(self.completed);
        enc.f64(self.busy_s);
        enc.usize(self.throttles.len());
        for &(clause, factor) in &self.throttles {
            enc.u32(clause);
            enc.f64(factor);
        }
        enc.u32(self.blackouts);
        enc.u64(self.throttled_starts);
        enc.f64(self.oracle_busy_until_s);
    }

    /// Decode a board serialised by [`BoardState::encode`]. The
    /// slowdown is refolded from the restored throttle windows —
    /// bitwise what the uninterrupted run carries, since
    /// [`BoardState::recompute_slowdown`] is a pure fold of the list.
    pub(crate) fn decode(
        dec: &mut crate::checkpoint::Dec<'_>,
        arch_keys: &[&'static str],
        n_boards: usize,
        n_throttle_clauses: usize,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let mut board = BoardState::new();
        board.up = dec.bool()?;
        let n = dec.count(8)?;
        for _ in 0..n {
            board
                .queue
                .push_back(crate::checkpoint::dec_queued_job(dec, arch_keys)?);
        }
        if dec.bool()? {
            let id = dec.u32()?;
            let taxon = crate::checkpoint::dec_taxon(dec)?;
            let start_s = dec.f64()?;
            let est_finish_s = dec.f64()?;
            let profiled_s = dec.f64()?;
            let raw_service_s = dec.f64()?;
            let outcome = crate::checkpoint::dec_outcome(dec, n_boards)?;
            if !outcome.finish_s.is_finite() {
                return Err(CheckpointError::Corrupt(
                    "in-flight completion time is not finite",
                ));
            }
            board.in_flight = Some(InFlight {
                id,
                taxon,
                start_s,
                est_finish_s,
                profiled_s,
                raw_service_s,
                outcome,
            });
        }
        board.dispatched = dec.usize()?;
        board.completed = dec.usize()?;
        board.busy_s = dec.f64()?;
        let n = dec.count(12)?;
        for _ in 0..n {
            let clause = dec.u32()?;
            if clause as usize >= n_throttle_clauses {
                return Err(CheckpointError::Corrupt(
                    "throttle window names an out-of-range chaos clause",
                ));
            }
            board.throttles.push((clause, dec.f64()?));
        }
        board.blackouts = dec.u32()?;
        board.throttled_starts = dec.u64()?;
        board.oracle_busy_until_s = dec.f64()?;
        board.recompute_slowdown();
        Ok(board)
    }

    /// Refold the composed slowdown from the active throttle windows:
    /// overlapping windows compose *multiplicatively* (two 2x
    /// throttles make a 4x slowdown), clamped to
    /// [`MAX_SLOWDOWN`](crate::chaos::MAX_SLOWDOWN). Recomputed from
    /// the window list on every change — never divided back out — so
    /// a window closing mid-overlap restores the exact product of
    /// what remains, bit-for-bit.
    pub(crate) fn recompute_slowdown(&mut self) {
        let mut s = 1.0;
        for &(_, f) in &self.throttles {
            s *= f;
        }
        self.slowdown = s.clamp(1.0, crate::chaos::MAX_SLOWDOWN);
    }
}

/// The cluster as the kernel and dispatchers see it at one instant.
///
/// Placeability — the one predicate every dispatcher scans per
/// arrival — is mirrored into a dense `Vec<bool>` maintained at
/// liveness/blackout edges, so the scan walks a flat byte array
/// instead of striding through [`BoardState`] structs; a live count
/// makes [`ClusterState::any_placeable`] O(1).
#[derive(Clone, Debug)]
pub struct ClusterState<'a> {
    /// The static board specs.
    pub spec: &'a ClusterSpec,
    /// Which backlog estimate [`ClusterState::est_busy_until_s`] serves.
    pub mode: DispatchMode,
    /// The virtual clock, seconds.
    pub now_s: f64,
    /// Per-board live state, dispatch index order.
    pub boards: Vec<BoardState>,
    /// Dense mirror of `up && blackouts == 0`, maintained by
    /// [`ClusterState::set_up`] / the blackout mutators.
    placeable: Vec<bool>,
    /// How many entries of `placeable` are true.
    n_placeable: usize,
    /// Incrementally maintained argmin index over placeable boards
    /// (see [`crate::index`]). Disabled unless the owner opts in with
    /// [`ClusterState::rebuild_dispatch_index`] and repairs it at every
    /// board mutation — the kernel does; hand-built states usually
    /// leave it off and dispatchers fall back to the reference scan.
    index: DispatchIndex,
}

impl<'a> ClusterState<'a> {
    /// Fresh state: every board up, idle and empty at time zero.
    pub fn new(spec: &'a ClusterSpec, mode: DispatchMode) -> Self {
        ClusterState {
            spec,
            mode,
            now_s: 0.0,
            boards: (0..spec.len()).map(|_| BoardState::new()).collect(),
            placeable: vec![true; spec.len()],
            n_placeable: spec.len(),
            index: DispatchIndex::default(),
        }
    }

    /// Enable the dispatch index and (re)build it from the current
    /// board state. After this, every board mutation made outside
    /// [`ClusterState`]'s own mutators must be followed by
    /// [`ClusterState::refresh_dispatch_index`] on the touched board,
    /// and every clock move must go through the kernel's advance path —
    /// the contract the event kernel upholds. Indexed picks also assume
    /// the estimates handed to dispatchers are fanned out per
    /// architecture class (identical values for boards sharing an
    /// architecture key), which the kernel's estimate path guarantees.
    ///
    /// Fleets smaller than `INDEX_MIN_BOARDS` (32, in `crate::index`)
    /// keep the index disabled — a linear scan over a few dozen boards
    /// is cheaper than maintaining the orderings, and both paths pick
    /// identically, so this is purely a performance threshold.
    pub fn rebuild_dispatch_index(&mut self) {
        if self.len() >= crate::index::INDEX_MIN_BOARDS {
            self.enable_dispatch_index();
        }
    }

    /// Unconditionally enable and (re)build the index, regardless of
    /// fleet size. Tests use this to exercise the indexed paths on
    /// small hand-built clusters.
    pub(crate) fn enable_dispatch_index(&mut self) {
        let mut keys: Vec<&'static str> = Vec::new();
        let arch_of = (0..self.len())
            .map(|b| {
                let k = self.spec.arch_key(b);
                match keys.iter().position(|&x| x == k) {
                    Some(i) => i as u16,
                    None => {
                        keys.push(k);
                        (keys.len() - 1) as u16
                    }
                }
            })
            .collect();
        self.index.reset(arch_of, keys.len());
        for b in 0..self.len() {
            self.refresh_dispatch_index(b);
        }
    }

    /// Seed the oracle-mode busy-until accumulator for board `b` and
    /// repair its dispatch index entry. Support for benches and tests
    /// that need a loaded fleet without running the kernel (which
    /// maintains the accumulator itself as it dispatches); only
    /// meaningful in [`DispatchMode::Oracle`].
    pub fn seed_oracle_backlog(&mut self, b: usize, busy_until_s: f64) {
        self.boards[b].oracle_busy_until_s = busy_until_s;
        self.refresh_dispatch_index(b);
    }

    /// The dispatch index, when enabled (dispatchers consult this to
    /// choose the indexed pick path).
    #[inline]
    pub(crate) fn dispatch_index(&self) -> Option<&DispatchIndex> {
        if self.index.enabled {
            Some(&self.index)
        } else {
            None
        }
    }

    /// Classify board `b` for the dispatch index from its live state
    /// (see [`crate::index`] for the class invariants).
    fn classify_board(&self, b: usize) -> BoardClass {
        if !self.placeable[b] {
            return BoardClass::None;
        }
        let busy = self.est_busy_until_s(b);
        if busy <= self.now_s {
            // Backlog is exactly 0.0 and stays 0.0 as the clock moves:
            // in online mode `busy <= now` forces the fold base to be
            // `now` with a zero queue sum, in oracle mode the
            // accumulator only falls further behind.
            return BoardClass::Zero {
                disp_bits: (self.boards[b].dispatched as f64).to_bits(),
            };
        }
        match self.mode {
            DispatchMode::Oracle => BoardClass::Ordered {
                busy_bits: busy.to_bits(),
                ifl_bits: None,
            },
            DispatchMode::Online => match &self.boards[b].in_flight {
                Some(f) if f.est_finish_s >= self.now_s => BoardClass::Ordered {
                    busy_bits: busy.to_bits(),
                    ifl_bits: Some(f.est_finish_s.to_bits()),
                },
                // A lapsed in-flight estimate (or an idle board with
                // queued work) folds from `now`: clock-dependent.
                // Bucketed by lapse time (0 for idle-with-queue) so
                // the stale set keeps a deterministic order for the
                // cached view to rebuild from.
                Some(f) => BoardClass::Stale {
                    lapse_bits: f.est_finish_s.to_bits(),
                },
                None => BoardClass::Stale { lapse_bits: 0 },
            },
        }
    }

    /// Re-file board `b` in the dispatch index after any mutation that
    /// can move its busy-until estimate, dispatch count, in-flight
    /// state or placeability. No-op while the index is disabled.
    #[inline]
    pub fn refresh_dispatch_index(&mut self, b: usize) {
        if !self.index.enabled {
            return;
        }
        let class = self.classify_board(b);
        self.index.set_class(b, class);
    }

    /// Advance the virtual clock to at least `time_s`, sweeping the
    /// dispatch index: ordered boards the clock has caught up with
    /// reclassify (their backlog just hit zero), and online boards
    /// whose in-flight estimate has lapsed demote out of the ordered
    /// class (their busy-until is now clock-dependent). Each board is
    /// swept at most once per insertion.
    pub(crate) fn advance_now(&mut self, time_s: f64) {
        self.now_s = self.now_s.max(time_s);
        if !self.index.enabled {
            return;
        }
        let now_bits = self.now_s.to_bits();
        while let Some(b) = self.index.ordered_lapsed(now_bits) {
            self.refresh_dispatch_index(b);
        }
        while let Some(b) = self.index.inflight_lapsed(now_bits) {
            self.refresh_dispatch_index(b);
        }
    }

    /// Set board `b`'s liveness, keeping the placeability mirror in
    /// sync. The only sanctioned way to flip `up`.
    pub(crate) fn set_up(&mut self, b: usize, up: bool) {
        self.boards[b].up = up;
        self.refresh_placeable(b);
    }

    /// Open a dispatch-blackout window over board `b`.
    pub(crate) fn add_blackout(&mut self, b: usize) {
        self.boards[b].blackouts += 1;
        self.refresh_placeable(b);
    }

    /// Close one dispatch-blackout window over board `b`.
    pub(crate) fn remove_blackout(&mut self, b: usize) {
        debug_assert!(self.boards[b].blackouts > 0, "unbalanced blackout window");
        self.boards[b].blackouts -= 1;
        self.refresh_placeable(b);
    }

    fn refresh_placeable(&mut self, b: usize) {
        let s = &self.boards[b];
        let now = s.up && s.blackouts == 0;
        if now != self.placeable[b] {
            self.placeable[b] = now;
            if now {
                self.n_placeable += 1;
            } else {
                self.n_placeable -= 1;
            }
        }
        // Placeability edges move boards in and out of the dispatch
        // index (a board in no class is invisible to indexed picks).
        self.refresh_dispatch_index(b);
    }

    /// Replace every board with checkpoint-restored state, then rebuild
    /// the derived structures that are *not* serialised: the dense
    /// placeability mirror, its live count, and the dispatch index.
    /// The caller must have set `now_s` to the checkpoint's clock
    /// first — index classification is clock-dependent.
    pub(crate) fn restore_boards(&mut self, boards: Vec<BoardState>) {
        assert_eq!(boards.len(), self.len(), "restore with matching fleet size");
        self.boards = boards;
        self.n_placeable = 0;
        for b in 0..self.boards.len() {
            let s = &self.boards[b];
            self.placeable[b] = s.up && s.blackouts == 0;
            if self.placeable[b] {
                self.n_placeable += 1;
            }
        }
        if self.index.enabled {
            self.enable_dispatch_index();
        } else {
            self.rebuild_dispatch_index();
        }
    }

    /// Number of boards (up or down).
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// Is the cluster empty of boards entirely?
    pub fn is_empty(&self) -> bool {
        self.boards.is_empty()
    }

    /// Is board `b` currently up?
    #[inline]
    pub fn up(&self, b: usize) -> bool {
        self.boards[b].up
    }

    /// Indices of the boards currently up, ascending.
    pub fn up_boards(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(|&b| self.boards[b].up)
    }

    /// Is any board up?
    pub fn any_up(&self) -> bool {
        self.boards.iter().any(|b| b.up)
    }

    /// May the dispatcher place new work on board `b`? Up *and* not
    /// under a chaos dispatch blackout. A blacked-out board keeps
    /// executing its queue — it is only closed to new placements.
    #[inline]
    pub fn placeable(&self, b: usize) -> bool {
        self.placeable[b]
    }

    /// Indices of the boards new work may be placed on, ascending —
    /// a dense flat-array scan, the shape dispatchers walk per pick.
    #[inline]
    pub fn placeable_boards(&self) -> impl Iterator<Item = usize> + '_ {
        self.placeable
            .iter()
            .enumerate()
            .filter_map(|(b, &p)| p.then_some(b))
    }

    /// Can new work be placed anywhere? O(1): a maintained count.
    pub fn any_placeable(&self) -> bool {
        self.n_placeable > 0
    }

    /// Dispatched-but-not-started jobs on board `b`.
    pub fn queue_depth(&self, b: usize) -> usize {
        self.boards[b].queue_len()
    }

    /// Taxonomy of the job board `b` is executing, if any.
    pub fn in_flight_taxon(&self, b: usize) -> Option<Taxon> {
        self.boards[b].in_flight.as_ref().map(|f| f.taxon)
    }

    /// Taxa queued on board `b`, queue order. Borrows instead of
    /// collecting — callers that need a `Vec` can `collect()`, hot
    /// paths iterate allocation-free.
    pub fn queued_taxa(&self, b: usize) -> impl Iterator<Item = Taxon> + '_ {
        self.boards[b].queued().map(|q| q.job.taxon)
    }

    /// Jobs ever dispatched to board `b`.
    pub fn dispatched(&self, b: usize) -> usize {
        self.boards[b].dispatched
    }

    /// Fraction of elapsed virtual time board `b` spent serving.
    pub fn utilisation(&self, b: usize) -> f64 {
        if self.now_s > 0.0 {
            self.boards[b].busy_s / self.now_s
        } else {
            0.0
        }
    }

    /// When board `b`'s backlog is estimated to drain, per the mode:
    /// oracle = the batch accumulator; online = observable in-flight
    /// remaining plus queued profiled service.
    #[inline]
    pub fn est_busy_until_s(&self, b: usize) -> f64 {
        match self.mode {
            DispatchMode::Oracle => self.boards[b].oracle_busy_until_s,
            DispatchMode::Online => self.online_busy_until_s(b),
        }
    }

    /// The live estimate, regardless of mode (what preemption scans and
    /// churn redistribution always use — they are online capabilities).
    ///
    /// Memoised per `(queue epoch, base bits)` on the board (see
    /// `BoardState::busy_until_from`): dispatchers query every
    /// board several times per pick against an unchanged clock and
    /// queue, and at high utilisation the fold base — the in-flight
    /// finish estimate — holds still across whole arrival bursts, so
    /// the common case is O(1) instead of a queue walk.
    #[inline]
    pub fn online_busy_until_s(&self, b: usize) -> f64 {
        let s = &self.boards[b];
        let base = match &s.in_flight {
            Some(f) => f.est_finish_s.max(self.now_s),
            None => self.now_s,
        };
        s.busy_until_from(base)
    }

    /// Queueing delay a job dispatched now would see on board `b`.
    #[inline]
    pub fn backlog_s(&self, b: usize) -> f64 {
        (self.est_busy_until_s(b) - self.now_s).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;

    fn qj(est: f64, penalty: f64) -> QueuedJob {
        QueuedJob {
            job: JobSpec {
                id: 0,
                workload: astro_workloads::by_name("swaptions").unwrap(),
                taxon: Taxon {
                    class: JobClass::Mixed,
                    signature: 0,
                },
                arrival_s: 0.0,
                slo_tightness: 4.0,
                seed: 1,
            },
            slo_s: 1.0,
            schedule: None,
            sched_arch: "odroid-xu4",
            est_service_s: est,
            profiled_s: est,
            penalty_s: penalty,
            migrations: 0,
            redispatches: 0,
        }
    }

    #[test]
    fn online_backlog_tracks_queue_and_in_flight() {
        let spec = ClusterSpec::heterogeneous(2);
        let mut st = ClusterState::new(&spec, DispatchMode::Online);
        st.now_s = 10.0;
        assert_eq!(st.backlog_s(0), 0.0);
        st.boards[0].enqueue(qj(2.0, 0.5));
        st.boards[0].enqueue(qj(1.0, 0.0));
        // Idle board: backlog is the queued estimates (incl. penalties).
        assert!((st.backlog_s(0) - 3.5).abs() < 1e-12);
        assert_eq!(st.queue_depth(0), 2);
        assert_eq!(st.queued_taxa(0).count(), 2);
        // A stale in-flight estimate clamps to now.
        st.boards[0].in_flight = Some(InFlight {
            id: 9,
            taxon: qj(1.0, 0.0).job.taxon,
            start_s: 5.0,
            est_finish_s: 8.0, // already past
            profiled_s: 3.0,
            raw_service_s: 7.0,
            outcome: crate::job::JobOutcome {
                id: 9,
                workload: "w",
                class: JobClass::Mixed,
                board: 0,
                arrival_s: 0.0,
                start_s: 5.0,
                finish_s: 12.0,
                service_s: 7.0,
                energy_j: 1.0,
                slo_s: 1.0,
                migrations: 0,
            },
        });
        assert!((st.backlog_s(0) - 3.5).abs() < 1e-12);
        assert!(st.in_flight_taxon(0).is_some());
    }

    #[test]
    fn busy_until_memo_is_bit_identical_and_invalidates() {
        let spec = ClusterSpec::heterogeneous(1);
        let mut st = ClusterState::new(&spec, DispatchMode::Online);
        st.now_s = 3.0;
        let terms = [qj(2.0, 0.1), qj(1.5, 0.0), qj(0.7, 0.2)];
        let fold = |base: f64, jobs: &[QueuedJob]| {
            let mut t = base;
            for j in jobs {
                t += j.est_total_s();
            }
            t
        };
        st.boards[0].enqueue(terms[0].clone());
        st.boards[0].enqueue(terms[1].clone());
        let first = st.online_busy_until_s(0); // fills the memo
        assert_eq!(first.to_bits(), st.online_busy_until_s(0).to_bits());
        assert_eq!(first.to_bits(), fold(3.0, &terms[..2]).to_bits());
        // Appending extends the memo in place — bitwise the re-fold.
        st.boards[0].enqueue(terms[2].clone());
        assert_eq!(
            st.online_busy_until_s(0).to_bits(),
            fold(3.0, &terms).to_bits()
        );
        // A clock move changes the fold base: the memo must miss.
        st.now_s = 4.0;
        assert_eq!(
            st.online_busy_until_s(0).to_bits(),
            fold(4.0, &terms).to_bits()
        );
        // Popping the front re-shapes the fold: memo invalidated.
        let popped = st.boards[0].pop_next().expect("queued");
        assert_eq!(
            popped.est_total_s().to_bits(),
            terms[0].est_total_s().to_bits()
        );
        assert_eq!(
            st.online_busy_until_s(0).to_bits(),
            fold(4.0, &terms[1..]).to_bits()
        );
        assert_eq!(st.queue_depth(0), 2);
    }

    #[test]
    fn oracle_backlog_is_the_accumulator() {
        let spec = ClusterSpec::heterogeneous(2);
        let mut st = ClusterState::new(&spec, DispatchMode::Oracle);
        st.now_s = 4.0;
        st.boards[1].oracle_busy_until_s = 9.0;
        assert!((st.backlog_s(1) - 5.0).abs() < 1e-12);
        // Queue contents do not move the oracle estimate.
        st.boards[1].enqueue(qj(100.0, 0.0));
        assert!((st.backlog_s(1) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_composes_multiplicatively_and_clamps() {
        let spec = ClusterSpec::heterogeneous(1);
        let mut st = ClusterState::new(&spec, DispatchMode::Online);
        let b = &mut st.boards[0];
        assert_eq!(b.slowdown, 1.0);
        b.throttles.push((0, 3.0));
        b.recompute_slowdown();
        assert_eq!(b.slowdown, 3.0);
        // Overlapping windows compose multiplicatively.
        b.throttles.push((1, 4.0));
        b.recompute_slowdown();
        assert_eq!(b.slowdown, 12.0);
        // A pathological stack clamps at MAX_SLOWDOWN.
        b.throttles.push((2, 100.0));
        b.recompute_slowdown();
        assert_eq!(b.slowdown, crate::chaos::MAX_SLOWDOWN);
        // Windows close in any order; the fold restores the exact
        // product of what remains.
        b.throttles.retain(|&(c, _)| c != 2);
        b.recompute_slowdown();
        assert_eq!(b.slowdown, 12.0);
        b.throttles.clear();
        b.recompute_slowdown();
        assert_eq!(b.slowdown, 1.0);
    }

    #[test]
    fn blackouts_gate_placement_but_not_liveness() {
        let spec = ClusterSpec::heterogeneous(3);
        let mut st = ClusterState::new(&spec, DispatchMode::Online);
        assert!(st.any_placeable());
        st.add_blackout(0);
        st.set_up(1, false);
        assert!(st.up(0), "blacked-out board stays up");
        assert!(!st.placeable(0));
        assert!(!st.placeable(1), "down board is never placeable");
        assert_eq!(st.placeable_boards().collect::<Vec<_>>(), vec![2]);
        // Overlapping blackouts: both must end before placement.
        st.add_blackout(2);
        st.add_blackout(2);
        assert!(!st.any_placeable());
        st.remove_blackout(2);
        assert!(!st.any_placeable());
        st.remove_blackout(2);
        assert!(st.any_placeable());
    }

    #[test]
    fn liveness_and_utilisation() {
        let spec = ClusterSpec::heterogeneous(3);
        let mut st = ClusterState::new(&spec, DispatchMode::Online);
        assert!(st.any_up());
        assert_eq!(st.up_boards().count(), 3);
        st.set_up(1, false);
        assert_eq!(st.up_boards().collect::<Vec<_>>(), vec![0, 2]);
        st.now_s = 10.0;
        st.boards[0].busy_s = 2.5;
        assert!((st.utilisation(0) - 0.25).abs() < 1e-12);
        assert_eq!(st.utilisation(2), 0.0);
    }
}
