//! Observed-service feedback: closing the loop between what the
//! dispatchers *predict* a job will cost and what the kernel actually
//! *observed* it cost.
//!
//! The source paper's central argument is that placement quality
//! depends on observed rather than assumed behaviour. The fleet's
//! dispatchers, however, priced every decision off cold profiled
//! estimates — three calibration runs per (workload, architecture,
//! policy version), taken before the stream started, never corrected
//! again. After the kernel has watched thousands of completions it
//! knows better: per-seed service jitter, schedule drift after
//! refreshes, and systematic profile bias are all visible in the
//! completion stream.
//!
//! [`ServiceFeedback`] is the correction layer. Every `Completion`
//! event reports `(taxon, architecture, profiled estimate, observed
//! service)`; the layer maintains an exponentially weighted moving
//! average of the *observed/profiled ratio* per (taxon, architecture)
//! pair. Dispatch-time estimates are multiplied by the current ratio,
//! so the phase-aware and energy-aware dispatchers (and the preemptive
//! redispatch scan) consult what the fleet has actually seen. The
//! ratio is clamped to a sane band and every update is validated, so
//! the correction can never be negative, zero, NaN or infinite —
//! whatever garbage a backend reports.
//!
//! Updates are applied in completion-time order by the kernel's
//! barrier merge (see [`crate::shard`]), so the learned state — and
//! every placement downstream of it — is byte-identical for any shard
//! count.

use crate::job::Taxon;
use std::collections::BTreeMap;

/// Tightest correction the layer will ever apply (an observed service
/// 8x *shorter* than profiled saturates here).
pub const MIN_RATIO: f64 = 0.125;
/// Loosest correction the layer will ever apply (an observed service
/// 8x *longer* than profiled saturates here).
pub const MAX_RATIO: f64 = 8.0;
/// Relative error above which a completion counts as a mispredict.
pub const MISPREDICT_BAND: f64 = 0.25;

/// Accounting for the feedback layer, surfaced in
/// [`FleetMetrics`](crate::metrics::FleetMetrics).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FeedbackStats {
    /// Completions whose observation was accepted into the EWMA.
    pub samples: u64,
    /// Observations rejected by validation (non-finite or non-positive
    /// observed/profiled values).
    pub rejected: u64,
    /// Completions whose *corrected* prediction missed the observed
    /// service by more than [`MISPREDICT_BAND`] relative error.
    pub mispredicts: u64,
    /// Sum of relative errors of corrected predictions (numerator of
    /// [`FeedbackStats::mean_abs_rel_err`]).
    pub sum_abs_rel_err: f64,
}

impl FeedbackStats {
    /// Mean |observed - predicted| / predicted over accepted samples.
    pub fn mean_abs_rel_err(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_abs_rel_err / self.samples as f64
        }
    }

    /// Fraction of accepted samples that were mispredicts.
    pub fn mispredict_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.samples as f64
        }
    }
}

/// One (taxon, architecture) cell of the correction layer.
#[derive(Clone, Copy, Debug)]
struct Cell {
    /// EWMA of observed/profiled, clamped to `[MIN_RATIO, MAX_RATIO]`.
    ratio: f64,
    /// Observations folded into `ratio`.
    samples: u64,
}

/// Per-(taxon, architecture) EWMA correction of profiled service
/// estimates, learned online from completion events. See the module
/// docs for the protocol.
#[derive(Clone, Debug)]
pub struct ServiceFeedback {
    /// EWMA weight of the newest observation, in (0, 1].
    alpha: f64,
    cells: BTreeMap<(Taxon, &'static str), Cell>,
    /// Running accounting (copied into the run's metrics at exit).
    pub stats: FeedbackStats,
}

impl ServiceFeedback {
    /// The fleet default: new observations carry 10% weight — heavy
    /// enough to track refresh-induced drift within tens of
    /// completions, light enough that per-seed jitter averages out.
    pub const DEFAULT_ALPHA: f64 = 0.1;

    /// A fresh layer with the given EWMA weight. Panics unless
    /// `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA weight must be in (0, 1], got {alpha}"
        );
        ServiceFeedback {
            alpha,
            cells: BTreeMap::new(),
            stats: FeedbackStats::default(),
        }
    }

    /// The multiplicative correction for `(taxon, arch)`: the current
    /// observed/profiled EWMA, or `1.0` before any observation.
    /// Always finite and within `[MIN_RATIO, MAX_RATIO]`.
    pub fn correction(&self, taxon: Taxon, arch: &'static str) -> f64 {
        self.cells.get(&(taxon, arch)).map_or(1.0, |c| c.ratio)
    }

    /// Fold one completion into the layer: `profiled_s` is the
    /// uncorrected profiled estimate the job was admitted with,
    /// `observed_s` the service time the kernel actually measured
    /// (excluding migration penalties). Invalid observations
    /// (non-finite or non-positive on either side) are rejected and
    /// counted, never folded.
    pub fn observe(&mut self, taxon: Taxon, arch: &'static str, profiled_s: f64, observed_s: f64) {
        if !(profiled_s.is_finite()
            && observed_s.is_finite()
            && profiled_s > 0.0
            && observed_s > 0.0)
        {
            self.stats.rejected += 1;
            return;
        }
        // Mispredict accounting runs against the *corrected* prediction
        // in force when the job completes — it measures how wrong the
        // dispatchers still are with feedback applied.
        let corrected = profiled_s * self.correction(taxon, arch);
        let rel_err = (observed_s - corrected).abs() / corrected;
        self.stats.samples += 1;
        self.stats.sum_abs_rel_err += rel_err;
        if rel_err > MISPREDICT_BAND {
            self.stats.mispredicts += 1;
        }

        let obs_ratio = (observed_s / profiled_s).clamp(MIN_RATIO, MAX_RATIO);
        let cell = self.cells.entry((taxon, arch)).or_insert(Cell {
            ratio: 1.0,
            samples: 0,
        });
        cell.ratio =
            ((1.0 - self.alpha) * cell.ratio + self.alpha * obs_ratio).clamp(MIN_RATIO, MAX_RATIO);
        cell.samples += 1;
    }

    /// Distinct (taxon, architecture) cells learned so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Has the layer learned nothing yet?
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Mean EWMA correction ratio over the learned cells (1.0 when
    /// nothing has been learned) — the flight recorder samples this at
    /// monitor ticks as a convergence gauge: it drifts away from 1.0
    /// while the layer is absorbing a bias and settles once learned.
    pub fn mean_correction(&self) -> f64 {
        if self.cells.is_empty() {
            return 1.0;
        }
        self.cells.values().map(|c| c.ratio).sum::<f64>() / self.cells.len() as f64
    }
}

impl ServiceFeedback {
    /// Serialise the layer for a kernel checkpoint: the EWMA weight,
    /// accounting, and every learned cell in `BTreeMap` (deterministic)
    /// order.
    pub(crate) fn encode(&self, enc: &mut crate::checkpoint::Enc) {
        enc.f64(self.alpha);
        enc.u64(self.stats.samples);
        enc.u64(self.stats.rejected);
        enc.u64(self.stats.mispredicts);
        enc.f64(self.stats.sum_abs_rel_err);
        enc.usize(self.cells.len());
        for (&(taxon, arch), cell) in &self.cells {
            crate::checkpoint::enc_taxon(enc, taxon);
            enc.str(arch);
            enc.f64(cell.ratio);
            enc.u64(cell.samples);
        }
    }

    /// Decode a layer serialised by [`ServiceFeedback::encode`].
    /// Architecture keys are re-interned against the resuming cluster's
    /// `arch_keys`.
    pub(crate) fn decode(
        dec: &mut crate::checkpoint::Dec<'_>,
        arch_keys: &[&'static str],
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let alpha = dec.f64()?;
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(CheckpointError::Corrupt(
                "feedback EWMA weight outside (0, 1]",
            ));
        }
        let stats = FeedbackStats {
            samples: dec.u64()?,
            rejected: dec.u64()?,
            mispredicts: dec.u64()?,
            sum_abs_rel_err: dec.f64()?,
        };
        let n = dec.count(8)?;
        let mut cells = BTreeMap::new();
        for _ in 0..n {
            let taxon = crate::checkpoint::dec_taxon(dec)?;
            let arch = dec.str()?;
            let arch = crate::checkpoint::resolve_arch(arch_keys, &arch)?;
            let ratio = dec.f64()?;
            if !(ratio.is_finite() && (MIN_RATIO..=MAX_RATIO).contains(&ratio)) {
                return Err(CheckpointError::Corrupt(
                    "feedback ratio outside clamp band",
                ));
            }
            let samples = dec.u64()?;
            if cells
                .insert((taxon, arch), Cell { ratio, samples })
                .is_some()
            {
                return Err(CheckpointError::Corrupt("duplicate feedback cell"));
            }
        }
        Ok(ServiceFeedback {
            alpha,
            cells,
            stats,
        })
    }
}

impl Default for ServiceFeedback {
    fn default() -> Self {
        ServiceFeedback::new(Self::DEFAULT_ALPHA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;

    fn taxon() -> Taxon {
        Taxon {
            class: JobClass::CpuHeavy,
            signature: 4,
        }
    }

    #[test]
    fn unseen_pairs_are_identity() {
        let fb = ServiceFeedback::default();
        assert_eq!(fb.correction(taxon(), "odroid-xu4"), 1.0);
        assert!(fb.is_empty());
    }

    #[test]
    fn converges_toward_injected_observed_times() {
        let mut fb = ServiceFeedback::new(0.2);
        // The backend consistently observes 1.5x the profiled estimate.
        for _ in 0..200 {
            fb.observe(taxon(), "odroid-xu4", 2.0, 3.0);
        }
        let c = fb.correction(taxon(), "odroid-xu4");
        assert!(
            (c - 1.5).abs() < 1e-6,
            "EWMA should converge to 1.5, got {c}"
        );
        // A corrected estimate now predicts the observed time.
        assert!((2.0 * c - 3.0).abs() < 1e-5);
        // Early samples mispredict, converged samples do not: the rate
        // must be well below 1.
        assert!(fb.stats.mispredict_rate() < 0.2, "{:?}", fb.stats);
        assert_eq!(fb.stats.samples, 200);
        assert_eq!(fb.stats.rejected, 0);
    }

    #[test]
    fn tracks_drift_between_regimes() {
        let mut fb = ServiceFeedback::new(0.2);
        for _ in 0..100 {
            fb.observe(taxon(), "rk3399", 1.0, 2.0);
        }
        assert!((fb.correction(taxon(), "rk3399") - 2.0).abs() < 1e-6);
        // The workload's schedule is refreshed; observed drops to 0.5x.
        for _ in 0..100 {
            fb.observe(taxon(), "rk3399", 1.0, 0.5);
        }
        assert!((fb.correction(taxon(), "rk3399") - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cells_are_independent_per_arch_and_taxon() {
        let mut fb = ServiceFeedback::default();
        let other = Taxon {
            class: JobClass::MemIo,
            signature: 9,
        };
        fb.observe(taxon(), "odroid-xu4", 1.0, 2.0);
        assert_ne!(fb.correction(taxon(), "odroid-xu4"), 1.0);
        assert_eq!(fb.correction(taxon(), "rk3399"), 1.0);
        assert_eq!(fb.correction(other, "odroid-xu4"), 1.0);
        assert_eq!(fb.len(), 1);
    }

    #[test]
    fn never_produces_negative_nan_or_infinite_corrections() {
        let mut fb = ServiceFeedback::new(1.0);
        let hostile = [
            (0.0, 1.0),
            (1.0, 0.0),
            (-1.0, 1.0),
            (1.0, -1.0),
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (1.0, f64::INFINITY),
            (f64::NEG_INFINITY, f64::NAN),
        ];
        for (p, o) in hostile {
            fb.observe(taxon(), "odroid-xu4", p, o);
        }
        assert_eq!(fb.stats.rejected, hostile.len() as u64);
        assert_eq!(fb.stats.samples, 0);
        assert_eq!(fb.correction(taxon(), "odroid-xu4"), 1.0);

        // Valid but extreme observations saturate at the clamp band.
        fb.observe(taxon(), "odroid-xu4", 1.0, 1e12);
        let c = fb.correction(taxon(), "odroid-xu4");
        assert!(c.is_finite() && c > 0.0 && c <= MAX_RATIO);
        fb.observe(taxon(), "odroid-xu4", 1e12, 1e-12);
        fb.observe(taxon(), "odroid-xu4", 1e12, 1e-12);
        let c = fb.correction(taxon(), "odroid-xu4");
        assert!(c.is_finite() && c >= MIN_RATIO, "clamped low, got {c}");
    }

    #[test]
    #[should_panic(expected = "EWMA weight")]
    fn zero_alpha_is_rejected() {
        ServiceFeedback::new(0.0);
    }

    #[test]
    fn stats_summaries() {
        let mut fb = ServiceFeedback::new(0.5);
        fb.observe(taxon(), "odroid-xu4", 1.0, 1.0); // exact
        fb.observe(taxon(), "odroid-xu4", 1.0, 10.0); // wild mispredict
        assert_eq!(fb.stats.samples, 2);
        assert_eq!(fb.stats.mispredicts, 1);
        assert!(fb.stats.mean_abs_rel_err() > 0.0);
        assert!((fb.stats.mispredict_rate() - 0.5).abs() < 1e-12);
    }
}
