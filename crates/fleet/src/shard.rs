//! The sharded execution plane of the fleet kernel.
//!
//! PR 4's kernel funnelled every board's events through one binary
//! heap: a single sequential loop whose wall-clock grows with board
//! count. This module partitions the cluster into `K` contiguous
//! *shards*, each owning a slice of the [`BoardState`] vector and its
//! own [`EventQueue`] of completion events. Between two control
//! events (arrival, monitor tick, churn) every completion is purely
//! board-local — a board finishing a job only pops its own queue and
//! starts its own next job — so the shards advance *independently* to
//! the next control timestamp, fanned out across OS threads (the same
//! scoped-thread pattern as [`chunked_map`](crate::sim::chunked_map))
//! when the pending window is deep enough to pay for the fan-out, and
//! their results are folded back in shard order at a **barrier
//! merge**.
//!
//! Control decisions that target a board — an arrival dispatched to
//! it, a preemptive migration landing on it, churn redistribution off
//! a dead neighbour — are expressed as typed [`ShardMsg`] values and
//! delivered to the owning shard at the barrier, never by reaching
//! into a shard mid-advance.
//!
//! **Why any shard count produces byte-identical results.** The
//! engine preserves the sequential kernel's semantics exactly:
//!
//! 1. Completions are only reordered *across* boards, and completions
//!    on different boards commute — each touches its own board's
//!    state, and the shared aggregates (outcome list, event counters,
//!    open-job count) are order-insensitive (outcomes are sorted by
//!    stream id before metrics are computed).
//! 2. Cross-board *observed-service* feedback updates are
//!    order-sensitive (an EWMA is not commutative), so the advance
//!    phase records observations instead of applying them; the
//!    barrier merge sorts them by (completion time, job id) and folds
//!    them sequentially.
//! 3. Control events always run on the control plane, sequentially,
//!    in the same (time, seed-order) sequence for every `K`, against
//!    board state that all completions before the control timestamp
//!    have already been folded into.
//!
//! The only events `K > 1` may legally reorder relative to `K = 1`
//! are same-timestamp completions on different boards — and those
//! commute by (1). See DESIGN.md "Sharded kernel" for the full
//! argument.

use crate::job::{JobOutcome, Taxon};
use crate::kernel::{Event, EventKind, EventQueue};
use crate::state::{BoardState, InFlight, QueuedJob};
use astro_exec::executor::{ExecPolicy, ExecRequest, Executor};
use astro_exec::program::CompiledProgram;
use astro_hw::boards::BoardSpec;
use astro_ir::Module;
use std::collections::BTreeMap;

/// Key of a compiled static-binary variant: (workload, architecture,
/// policy version), the name strings reduced to their [`sk`] addresses.
/// A workload maps to exactly one taxon, and versions are per (taxon,
/// architecture), so the key never aliases schedules.
///
/// [`sk`]: crate::sim::sk
pub(crate) type WarmKey = (usize, usize, u32);

/// The compiled-program memo the shards execute from, keyed by
/// [`sk`](crate::sim::sk) name addresses (probed per job start — the
/// compiled values are pure functions of the named module and
/// schedule, and the maps are never iterated). Populated by the
/// control plane *at dispatch/migration time* (compilation is
/// deterministic and memoised, so moving it off the start path changes
/// no result); the advance phase only reads it, which is what lets
/// shards run on plain shared references.
#[derive(Default)]
pub(crate) struct ProgramSet {
    /// Stock binaries, per workload (run under GTS).
    pub cold: BTreeMap<usize, CompiledProgram>,
    /// Astro static binaries, per (workload, architecture, version).
    pub warm: BTreeMap<WarmKey, CompiledProgram>,
}

/// A typed action the control plane routes to the shard owning the
/// target board, applied at the barrier between advances.
#[derive(Debug)]
pub enum ShardMsg {
    /// Queue a dispatched/migrated/redistributed job on a board
    /// (starting it immediately when the board is idle).
    Enqueue {
        /// Global board index.
        board: usize,
        /// The job, with schedule and estimates already resolved.
        job: QueuedJob,
    },
}

/// One observed completion, recorded during a shard advance and folded
/// into the feedback layer at the barrier merge in (time, id) order.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Observation {
    /// Completion timestamp (the merge sort key).
    pub finish_s: f64,
    /// Job stream id (the merge tie-breaker).
    pub id: u32,
    /// The job's taxonomy.
    pub taxon: Taxon,
    /// Architecture key of the board it ran on.
    pub arch: &'static str,
    /// Uncorrected profiled service estimate it was admitted with.
    pub profiled_s: f64,
    /// Service time actually observed (excluding migration penalties).
    pub observed_s: f64,
}

/// What one shard produced during one advance: folded into the global
/// run state at the barrier, in shard order.
#[derive(Default)]
pub(crate) struct AdvanceDelta {
    /// Completion events processed.
    pub completions: u64,
    /// Outcomes revealed (per-shard completion order; globally sorted
    /// by id before metrics).
    pub outcomes: Vec<JobOutcome>,
    /// Feedback observations (empty unless the scenario enables the
    /// feedback layer).
    pub observations: Vec<Observation>,
}

impl AdvanceDelta {
    fn fold(&mut self, other: AdvanceDelta) {
        self.completions += other.completions;
        self.outcomes.extend(other.outcomes);
        self.observations.extend(other.observations);
    }
}

/// Everything a shard needs to advance: the execution backend, the
/// compiled programs, source modules and board specs. All shared
/// read-only across shard threads.
pub(crate) struct AdvanceCtx<'a> {
    /// The execution backend (answers are a pure function of the
    /// request, whatever thread asks).
    pub exec: &'a dyn Executor,
    /// Compiled binaries, populated at dispatch time.
    pub progs: &'a ProgramSet,
    /// Source modules per workload.
    pub modules: &'a BTreeMap<&'static str, Module>,
    /// Board specs, global index order.
    pub specs: &'a [BoardSpec],
    /// Record [`Observation`]s for the feedback layer?
    pub collect_observations: bool,
}

/// Shard bookkeeping: the board partition, one completion
/// [`EventQueue`] per shard, and fan-out accounting.
pub struct ShardSet {
    /// Boards per shard (the last shard may own fewer).
    chunk: usize,
    /// Per-shard completion queues, shard order.
    queues: Vec<EventQueue>,
    /// Exact earliest pending completion time across every shard
    /// (`f64::INFINITY` when nothing is pending). The barrier's fast
    /// path: an advance whose horizon is at or before this bound has
    /// nothing to do on any shard, so the per-shard scan — K heap
    /// peeks per control event, the steady-state hot path at a
    /// million arrivals — is skipped outright.
    earliest_s: f64,
    /// Barrier advances performed.
    pub advances: u64,
    /// Advances that fanned out across OS threads (the rest ran the
    /// shards serially — cheaper when the pending window is shallow).
    pub par_advances: u64,
    /// [`ShardMsg`]s delivered to shards.
    pub messages: u64,
    /// Did the most recent `advance_all` fan out across OS threads?
    /// Read by the flight recorder to label advance spans; purely
    /// descriptive — the merge result is identical either way.
    pub last_parallel: bool,
}

/// Minimum pending completion events (summed over shards) before a
/// bulk advance pays for spawning one thread per shard.
const PAR_MIN_PENDING: usize = 256;

impl ShardSet {
    /// Partition `n_boards` into `shards` contiguous chunks.
    pub fn new(n_boards: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n_boards.max(1));
        let chunk = n_boards.div_ceil(shards).max(1);
        let n_shards = n_boards.div_ceil(chunk).max(1);
        ShardSet {
            chunk,
            queues: (0..n_shards).map(|_| EventQueue::new()).collect(),
            earliest_s: f64::INFINITY,
            advances: 0,
            par_advances: 0,
            messages: 0,
            last_parallel: false,
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Is the partition trivial (it never is — at least one shard)?
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Which shard owns global board `b`.
    pub fn shard_of(&self, b: usize) -> usize {
        b / self.chunk
    }

    /// Completion events pending across all shards.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Deliver a control-plane action to the shard owning its target
    /// board: queue the job, starting it immediately when the board is
    /// idle (pushing the completion into that shard's queue).
    pub(crate) fn deliver(
        &mut self,
        boards: &mut [BoardState],
        msg: ShardMsg,
        now_s: f64,
        ctx: &AdvanceCtx<'_>,
    ) {
        self.messages += 1;
        match msg {
            ShardMsg::Enqueue { board, job } => {
                let shard = self.shard_of(board);
                if boards[board].in_flight.is_none() {
                    start_on(
                        board,
                        &mut boards[board],
                        &mut self.queues[shard],
                        now_s,
                        job,
                        ctx,
                    );
                    // The push can only tighten the earliest bound.
                    if let Some(ev) = self.queues[shard].peek() {
                        self.earliest_s = self.earliest_s.min(ev.time_s);
                    }
                } else {
                    boards[board].enqueue(job);
                }
            }
        }
    }

    /// Rebuild the per-shard completion queues after a checkpoint
    /// restore: exactly one completion event per busy board, at the
    /// in-flight job's already-resolved true finish time. Board order
    /// fixes the push sequence, but any order would do — the only
    /// events that can share a timestamp live on *different* boards
    /// (one in-flight per board), and same-time cross-board
    /// completions commute (see the module docs). Must be called on a
    /// freshly-partitioned set whose queues are empty.
    pub(crate) fn restore_completions(&mut self, boards: &[BoardState]) {
        debug_assert_eq!(self.pending(), 0, "restore into a fresh shard set");
        for (b, bs) in boards.iter().enumerate() {
            if let Some(f) = &bs.in_flight {
                let shard = self.shard_of(b);
                self.queues[shard].push(
                    f.outcome.finish_s,
                    EventKind::Completion { board: b as u32 },
                );
            }
        }
        self.earliest_s = self
            .queues
            .iter()
            .filter_map(|q| q.peek().map(|e| e.time_s))
            .fold(f64::INFINITY, f64::min);
    }

    /// Restore the fan-out accounting carried across a checkpoint
    /// (the queues themselves are rebuilt by
    /// [`ShardSet::restore_completions`]).
    pub(crate) fn restore_counters(&mut self, advances: u64, par_advances: u64, messages: u64) {
        self.advances = advances;
        self.par_advances = par_advances;
        self.messages = messages;
    }

    /// Advance every shard's completion chain to `to_s` (exclusive) and
    /// fold the per-shard deltas in shard order. `workers > 1` fans the
    /// shards out across OS threads when the pending window is deep
    /// enough; the result is identical either way — shards touch
    /// disjoint board slices and the merge order is fixed.
    pub(crate) fn advance_all(
        &mut self,
        boards: &mut [BoardState],
        to_s: f64,
        workers: usize,
        ctx: &AdvanceCtx<'_>,
    ) -> AdvanceDelta {
        self.advances += 1;
        self.last_parallel = false;
        // Fast path: nothing pending strictly before the horizon on
        // any shard — the common case between back-to-back arrivals.
        if self.earliest_s >= to_s {
            return AdvanceDelta::default();
        }
        let chunk = self.chunk;
        let mut merged = AdvanceDelta::default();
        if workers > 1 && self.queues.len() > 1 && self.pending() >= PAR_MIN_PENDING {
            self.par_advances += 1;
            self.last_parallel = true;
            let deltas: Vec<AdvanceDelta> = std::thread::scope(|scope| {
                let handles: Vec<_> = boards
                    .chunks_mut(chunk)
                    .zip(self.queues.iter_mut())
                    .enumerate()
                    .map(|(s, (slice, queue))| {
                        scope.spawn(move || advance_shard(s * chunk, slice, queue, to_s, ctx))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for d in deltas {
                merged.fold(d);
            }
        } else {
            for (s, (slice, queue)) in boards
                .chunks_mut(chunk)
                .zip(self.queues.iter_mut())
                .enumerate()
            {
                merged.fold(advance_shard(s * chunk, slice, queue, to_s, ctx));
            }
        }
        // Re-establish the exact bound after pops and chained starts.
        self.earliest_s = self
            .queues
            .iter()
            .filter_map(|q| q.peek().map(|e| e.time_s))
            .fold(f64::INFINITY, f64::min);
        merged
    }
}

/// Advance one shard: process its completion events strictly before
/// `to_s`, starting each board's next queued job as the previous one
/// finishes. Touches only this shard's board slice and queue.
fn advance_shard(
    base: usize,
    boards: &mut [BoardState],
    queue: &mut EventQueue,
    to_s: f64,
    ctx: &AdvanceCtx<'_>,
) -> AdvanceDelta {
    let mut delta = AdvanceDelta::default();
    while let Some(ev) = queue.pop_before(to_s) {
        let Event { time_s, kind, .. } = ev;
        let EventKind::Completion { board } = kind else {
            unreachable!("shard queues hold only completion events");
        };
        let b = board as usize;
        debug_assert!(
            b >= base && b - base < boards.len(),
            "completion crossed shards"
        );
        let bs = &mut boards[b - base];
        let fin = bs
            .in_flight
            .take()
            .expect("completion event for an idle board");
        bs.completed += 1;
        delta.completions += 1;
        if ctx.collect_observations {
            delta.observations.push(Observation {
                finish_s: time_s,
                id: fin.outcome.id,
                taxon: fin.taxon,
                arch: ctx.specs[b].name,
                profiled_s: fin.profiled_s,
                observed_s: fin.raw_service_s,
            });
        }
        delta.outcomes.push(fin.outcome);
        if let Some(next) = bs.pop_next() {
            start_on(b, bs, queue, time_s, next, ctx);
        }
    }
    delta
}

/// Begin service of `job` on idle board `b` *now*: one executor run
/// fixes the true finish time, the completion event is pushed onto the
/// owning shard's queue, and dispatchers see only the estimate until
/// then.
pub(crate) fn start_on(
    b: usize,
    bs: &mut BoardState,
    queue: &mut EventQueue,
    now_s: f64,
    job: QueuedJob,
    ctx: &AdvanceCtx<'_>,
) {
    debug_assert!(bs.in_flight.is_none());
    let spec = &ctx.specs[b];
    let w = &job.job.workload;
    let module = &ctx.modules[w.name];
    let full = spec.config_space().full();
    // Only the run's (wall, energy) totals matter here, so the scalar
    // executor path is used: on the replay backend it skips the whole
    // checkpoint-vector assembly per job.
    let (wall_time_s, energy_j) = match &job.schedule {
        None => {
            // Stock binary under GTS (cold mode, cache misses awaiting
            // the async training, guard bypasses).
            let prog = ctx
                .progs
                .cold
                .get(&crate::sim::sk(w.name))
                .expect("stock binary compiled at dispatch");
            ctx.exec.execute_scalar(&ExecRequest {
                workload: w.name,
                module,
                program: prog,
                board: spec,
                config: full,
                policy: ExecPolicy::Gts,
                seed: job.job.seed,
            })
        }
        Some((st, version)) => {
            let prog = ctx
                .progs
                .warm
                .get(&(
                    crate::sim::sk(w.name),
                    crate::sim::sk(job.sched_arch),
                    *version,
                ))
                .expect("static binary compiled at dispatch");
            ctx.exec.execute_scalar(&ExecRequest {
                workload: w.name,
                module,
                program: prog,
                board: spec,
                config: full,
                policy: ExecPolicy::StaticTable(st.as_table()),
                seed: job.job.seed,
            })
        }
    };
    // A chaos throttle stretches real execution (DVFS-style: the work
    // takes longer at the capped clock) but not the migration penalty,
    // which models data movement off-board. slowdown is 1.0 outside
    // throttle windows, and `x * 1.0` is bitwise identity, so the
    // no-chaos path is unchanged to the last bit.
    if bs.slowdown > 1.0 {
        bs.throttled_starts += 1;
    }
    let service = wall_time_s * bs.slowdown + job.penalty_s;
    let finish = now_s + service;
    bs.busy_s += service;
    bs.in_flight = Some(InFlight {
        id: job.job.id,
        taxon: job.job.taxon,
        start_s: now_s,
        est_finish_s: now_s + job.est_total_s(),
        profiled_s: job.profiled_s,
        raw_service_s: wall_time_s * bs.slowdown,
        outcome: JobOutcome {
            id: job.job.id,
            workload: w.name,
            class: job.job.class(),
            board: b,
            arrival_s: job.job.arrival_s,
            start_s: now_s,
            finish_s: finish,
            service_s: service,
            energy_j,
            slo_s: job.slo_s,
            migrations: job.migrations,
        },
    });
    queue.push(finish, EventKind::Completion { board: b as u32 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_boards_exactly_once() {
        for n in [1usize, 2, 5, 16, 500] {
            for k in [1usize, 2, 4, 7, 64] {
                let set = ShardSet::new(n, k);
                assert!(set.len() >= 1 && set.len() <= k.min(n));
                let mut per_shard = vec![0usize; set.len()];
                for b in 0..n {
                    let s = set.shard_of(b);
                    assert!(s < set.len(), "board {b} of {n} landed in shard {s}");
                    per_shard[s] += 1;
                }
                assert_eq!(per_shard.iter().sum::<usize>(), n);
                // Contiguous chunks: every shard but the last is full.
                for (s, &count) in per_shard.iter().enumerate() {
                    if s + 1 < set.len() {
                        assert_eq!(count, n.div_ceil(set.len().max(1)).max(1));
                    } else {
                        assert!(count >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_shard_counts_clamp_to_boards() {
        let set = ShardSet::new(3, 64);
        assert_eq!(set.len(), 3);
        assert_eq!(set.pending(), 0);
        assert!(!set.is_empty());
    }
}
