//! Fleet-level metrics: throughput, latency percentiles vs SLO,
//! cluster-wide energy, per-board utilisation, and observed-service
//! mispredict accounting.

use crate::cache::CacheStats;
use crate::feedback::FeedbackStats;
use crate::job::JobOutcome;
use crate::state::DroppedJob;
use crate::telemetry::QuantileDigest;

/// Nearest-rank percentile of an ascending-sorted slice (`q` in 0..100).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregated fleet statistics for one scenario.
#[derive(Clone, Debug)]
pub struct FleetMetrics {
    /// Jobs completed.
    pub jobs: usize,
    /// Last completion time, seconds.
    pub makespan_s: f64,
    /// Jobs per second of makespan.
    pub throughput_jps: f64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// Median latency.
    pub p50_s: f64,
    /// 95th-percentile latency.
    pub p95_s: f64,
    /// 99th-percentile latency.
    pub p99_s: f64,
    /// Jobs that missed their SLO.
    pub slo_misses: usize,
    /// 99th percentile of per-job latency *as a fraction of its SLO* —
    /// the "p99 vs SLO" headline: `< 1` means even the tail meets its
    /// deadline, `2` means the p99 job blew its budget twice over.
    pub p99_slo_ratio: f64,
    /// Energy of all job runs plus any training charged, Joules.
    pub total_energy_j: f64,
    /// Per-board busy fraction of the makespan.
    pub board_util: Vec<f64>,
    /// Observed-service feedback accounting (all-zero when the
    /// scenario ran without the feedback layer): samples folded,
    /// rejected observations, mispredicts and mean prediction error.
    pub feedback: FeedbackStats,
}

impl FleetMetrics {
    /// Aggregate outcomes (any order) plus per-board busy seconds.
    /// `extra_energy_j` covers energy spent outside job runs (training).
    pub fn from_outcomes(
        outcomes: &[JobOutcome],
        board_busy_s: impl IntoIterator<Item = f64>,
        extra_energy_j: f64,
    ) -> Self {
        let jobs = outcomes.len();
        let makespan_s = outcomes.iter().map(|o| o.finish_s).fold(0.0, f64::max);
        let mut latencies: Vec<f64> = outcomes.iter().map(|o| o.latency_s()).collect();
        latencies.sort_by(f64::total_cmp);
        let mean_latency_s = if jobs == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / jobs as f64
        };
        let total_energy_j = outcomes.iter().map(|o| o.energy_j).sum::<f64>() + extra_energy_j;
        // A non-positive SLO is a deadline that can never be met: it
        // must sort as the *worst* ratio in the fleet, not silently map
        // to 0.0 (which used to score it as the best). Arrival-stream
        // construction rejects non-positive tightness outright, so this
        // arm only fires for hand-built outcomes — and now fails loud.
        let mut slo_ratios: Vec<f64> = outcomes
            .iter()
            .map(|o| {
                if o.slo_s > 0.0 {
                    o.latency_s() / o.slo_s
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        slo_ratios.sort_by(f64::total_cmp);
        FleetMetrics {
            jobs,
            makespan_s,
            throughput_jps: if makespan_s > 0.0 {
                jobs as f64 / makespan_s
            } else {
                0.0
            },
            mean_latency_s,
            p50_s: percentile(&latencies, 50.0),
            p95_s: percentile(&latencies, 95.0),
            p99_s: percentile(&latencies, 99.0),
            slo_misses: outcomes.iter().filter(|o| !o.slo_met()).count(),
            p99_slo_ratio: percentile(&slo_ratios, 99.0),
            total_energy_j,
            feedback: FeedbackStats::default(),
            board_util: board_busy_s
                .into_iter()
                .map(|b| {
                    if makespan_s > 0.0 {
                        b / makespan_s
                    } else {
                        0.0
                    }
                })
                .collect(),
        }
    }

    /// SLO miss rate in [0, 1].
    pub fn slo_miss_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.slo_misses as f64 / self.jobs as f64
        }
    }

    /// Mean board utilisation.
    pub fn mean_util(&self) -> f64 {
        if self.board_util.is_empty() {
            0.0
        } else {
            self.board_util.iter().sum::<f64>() / self.board_util.len() as f64
        }
    }
}

/// Samples the sliding latency window holds: the resident kernel's
/// "recent tail" gauges (window p50/p95/p99) are nearest-rank
/// percentiles over the last this-many completions.
pub const STREAM_WINDOW: usize = 4096;

/// Streaming aggregation state for the resident kernel: everything
/// [`FleetMetrics`] needs, folded one [`JobOutcome`] at a time in
/// (finish time, id) order at the barrier merge, so a run holds O(1)
/// metric state instead of a retained outcome vector.
///
/// Counters and sums are exact (the fold order is pinned per barrier,
/// so they are bit-identical for every shard count); percentiles come
/// from the fixed-size [`QuantileDigest`]s, within one digest bucket
/// of the retained-outcome nearest-rank values.
#[derive(Clone)]
pub(crate) struct StreamAgg {
    /// Outcomes folded.
    pub jobs: u64,
    /// Sum of end-to-end latencies, seconds.
    pub sum_latency_s: f64,
    /// Sum of per-job energies, Joules.
    pub sum_energy_j: f64,
    /// Latest completion time seen, seconds.
    pub makespan_s: f64,
    /// Outcomes that missed their SLO.
    pub slo_misses: u64,
    /// Latency digest (p50/p95/p99 estimates).
    pub latency: QuantileDigest,
    /// Latency-to-SLO ratio digest (p99 vs SLO estimate).
    pub slo_ratio: QuantileDigest,
    /// Ring of the last [`STREAM_WINDOW`] latencies.
    pub window: Vec<f64>,
    /// Next ring slot to overwrite once the ring is full.
    pub window_next: usize,
}

impl StreamAgg {
    /// An empty aggregate.
    pub fn new() -> Self {
        StreamAgg {
            jobs: 0,
            sum_latency_s: 0.0,
            sum_energy_j: 0.0,
            makespan_s: 0.0,
            slo_misses: 0,
            latency: QuantileDigest::new(),
            slo_ratio: QuantileDigest::new(),
            window: Vec::new(),
            window_next: 0,
        }
    }

    /// Fold one completed outcome in (callers feed outcomes in
    /// (finish time, id) order per barrier).
    pub fn add(&mut self, o: &JobOutcome) {
        let lat = o.latency_s();
        self.jobs += 1;
        self.sum_latency_s += lat;
        self.sum_energy_j += o.energy_j;
        self.makespan_s = self.makespan_s.max(o.finish_s);
        if !o.slo_met() {
            self.slo_misses += 1;
        }
        self.latency.add(lat);
        // A non-positive SLO can never be met: clamp it into the
        // digest's top bucket (the worst ratio), mirroring the
        // retained path's f64::INFINITY sort key.
        self.slo_ratio.add(if o.slo_s > 0.0 {
            lat / o.slo_s
        } else {
            f64::INFINITY
        });
        if self.window.len() < STREAM_WINDOW {
            self.window.push(lat);
        } else {
            self.window[self.window_next] = lat;
            self.window_next = (self.window_next + 1) % STREAM_WINDOW;
        }
    }

    /// The aggregate as [`FleetMetrics`]: counters and sums exact,
    /// percentiles from the digests.
    pub fn metrics(
        &self,
        board_busy_s: impl IntoIterator<Item = f64>,
        extra_energy_j: f64,
    ) -> FleetMetrics {
        let jobs = self.jobs as usize;
        FleetMetrics {
            jobs,
            makespan_s: self.makespan_s,
            throughput_jps: if self.makespan_s > 0.0 {
                jobs as f64 / self.makespan_s
            } else {
                0.0
            },
            mean_latency_s: if jobs == 0 {
                0.0
            } else {
                self.sum_latency_s / jobs as f64
            },
            p50_s: self.latency.quantile(50.0),
            p95_s: self.latency.quantile(95.0),
            p99_s: self.latency.quantile(99.0),
            slo_misses: self.slo_misses as usize,
            p99_slo_ratio: self.slo_ratio.quantile(99.0),
            total_energy_j: self.sum_energy_j + extra_energy_j,
            feedback: FeedbackStats::default(),
            board_util: board_busy_s
                .into_iter()
                .map(|b| {
                    if self.makespan_s > 0.0 {
                        b / self.makespan_s
                    } else {
                        0.0
                    }
                })
                .collect(),
        }
    }

    /// Serialise the aggregate for a kernel checkpoint.
    pub fn encode(&self, enc: &mut crate::checkpoint::Enc) {
        enc.u64(self.jobs);
        enc.f64(self.sum_latency_s);
        enc.f64(self.sum_energy_j);
        enc.f64(self.makespan_s);
        enc.u64(self.slo_misses);
        self.latency.encode(enc);
        self.slo_ratio.encode(enc);
        enc.usize(self.window.len());
        for &lat in &self.window {
            enc.f64(lat);
        }
        enc.usize(self.window_next);
    }

    /// Decode an aggregate serialised by [`StreamAgg::encode`].
    pub fn decode(
        dec: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let jobs = dec.u64()?;
        let sum_latency_s = dec.f64()?;
        let sum_energy_j = dec.f64()?;
        let makespan_s = dec.f64()?;
        let slo_misses = dec.u64()?;
        let latency = QuantileDigest::decode(dec)?;
        let slo_ratio = QuantileDigest::decode(dec)?;
        let n = dec.count(8)?;
        if n > STREAM_WINDOW {
            return Err(CheckpointError::Corrupt(
                "latency window longer than STREAM_WINDOW",
            ));
        }
        let mut window = Vec::with_capacity(n);
        for _ in 0..n {
            window.push(dec.f64()?);
        }
        let window_next = dec.usize()?;
        if window_next >= STREAM_WINDOW {
            return Err(CheckpointError::Corrupt(
                "latency window cursor out of range",
            ));
        }
        Ok(StreamAgg {
            jobs,
            sum_latency_s,
            sum_energy_j,
            makespan_s,
            slo_misses,
            latency,
            slo_ratio,
            window,
            window_next,
        })
    }

    /// The public summary carried in [`FleetOutcome::stream`].
    pub fn summary(&self) -> StreamSummary {
        let mut w = self.window.clone();
        w.sort_by(f64::total_cmp);
        StreamSummary {
            jobs: self.jobs,
            window_len: w.len(),
            window_p50_s: percentile(&w, 50.0),
            window_p95_s: percentile(&w, 95.0),
            window_p99_s: percentile(&w, 99.0),
            digest_p50_s: self.latency.quantile(50.0),
            digest_p95_s: self.latency.quantile(95.0),
            digest_p99_s: self.latency.quantile(99.0),
        }
    }
}

/// What the resident kernel's streaming aggregation reports beyond
/// [`FleetMetrics`]: the sliding-window ("recent tail") percentiles a
/// long-horizon run watches, plus the digest estimates they complement.
/// `None` on [`FleetOutcome`] when the run retained its outcomes.
#[derive(Clone, Debug)]
pub struct StreamSummary {
    /// Outcomes folded into the streaming aggregate.
    pub jobs: u64,
    /// Completions currently in the sliding window (≤ [`STREAM_WINDOW`]).
    pub window_len: usize,
    /// Median latency over the window, seconds.
    pub window_p50_s: f64,
    /// 95th-percentile latency over the window, seconds.
    pub window_p95_s: f64,
    /// 99th-percentile latency over the window, seconds.
    pub window_p99_s: f64,
    /// Whole-run median latency from the digest, seconds.
    pub digest_p50_s: f64,
    /// Whole-run 95th-percentile latency from the digest, seconds.
    pub digest_p95_s: f64,
    /// Whole-run 99th-percentile latency from the digest, seconds.
    pub digest_p99_s: f64,
}

/// Everything one scenario produces.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// The aggregate metrics.
    pub metrics: FleetMetrics,
    /// Per-job records, in stream (id) order.
    pub outcomes: Vec<JobOutcome>,
    /// Policy-cache accounting at the end of the run.
    pub cache: CacheStats,
    /// Jobs whose cached schedule was rejected by the admission latency
    /// guard (they ran their stock binary instead).
    pub guard_bypasses: u64,
    /// Wall time spent in asynchronous (re)training, seconds (off the
    /// serving path, so not part of any job's latency).
    pub train_time_s: f64,
    /// Energy spent in (re)training, Joules (already in `metrics`).
    pub train_energy_j: f64,
    /// Label of the execution backend that served profile and job runs
    /// (`"machine"` or `"replay"`).
    pub backend: &'static str,
    /// Trace-calibration sweeps the replay backend performed (0 under
    /// the machine backend).
    pub calibrations: u64,
    /// Dispatch mode label (`"oracle"` or `"online"`).
    pub dispatch: &'static str,
    /// Jobs the kernel dropped instead of completing, ascending by
    /// stream id, each tagged with its
    /// [`DropReason`](crate::state::DropReason) (no board up vs
    /// redispatch cap). Dropped jobs have no [`JobOutcome`].
    pub dropped: Vec<DroppedJob>,
    /// Event-kernel accounting for the run (including shard-plane
    /// counters: shards, messages, advances).
    pub kernel: crate::kernel::KernelStats,
    /// Per-chaos-clause accounting (empty when the scenario carries no
    /// [`ChaosSchedule`](crate::chaos::ChaosSchedule)).
    pub chaos: crate::chaos::ChaosStats,
    /// Streaming-aggregation summary when the run streamed instead of
    /// retaining outcomes (the resident kernel with retention off);
    /// `None` on retained runs, whose `outcomes` carry everything.
    pub stream: Option<StreamSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;

    fn outcome(id: u32, arrival: f64, start: f64, finish: f64, energy: f64) -> JobOutcome {
        JobOutcome {
            id,
            workload: "w",
            class: JobClass::Mixed,
            board: 0,
            arrival_s: arrival,
            start_s: start,
            finish_s: finish,
            service_s: finish - start,
            energy_j: energy,
            slo_s: 1.5,
            migrations: 0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&xs, 50.0), 5.0);
        assert_eq!(percentile(&xs, 95.0), 10.0);
        assert_eq!(percentile(&xs, 99.0), 10.0);
        assert_eq!(percentile(&xs, 10.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[3.0], 99.0), 3.0);
    }

    #[test]
    fn aggregation_counts_and_energy() {
        let outs = vec![
            outcome(0, 0.0, 0.0, 1.0, 2.0), // latency 1.0, meets 1.5 SLO
            outcome(1, 0.5, 1.0, 2.5, 3.0), // latency 2.0, misses
        ];
        let m = FleetMetrics::from_outcomes(&outs, [1.0, 1.5], 0.5);
        assert_eq!(m.jobs, 2);
        assert_eq!(m.makespan_s, 2.5);
        assert_eq!(m.slo_misses, 1);
        assert!((m.slo_miss_rate() - 0.5).abs() < 1e-12);
        assert!((m.total_energy_j - 5.5).abs() < 1e-12);
        assert!((m.mean_latency_s - 1.5).abs() < 1e-12);
        assert!((m.board_util[0] - 0.4).abs() < 1e-12);
        assert!((m.mean_util() - 0.5).abs() < 1e-12);
        assert!((m.throughput_jps - 0.8).abs() < 1e-12);
        // p99 of {1.0/1.5, 2.0/1.5}: nearest-rank lands on the worst.
        assert!((m.p99_slo_ratio - 2.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn non_positive_slo_sorts_as_worst_ratio_not_best() {
        let mut bad = outcome(0, 0.0, 0.0, 1.0, 1.0);
        bad.slo_s = 0.0; // impossible deadline
        let good = outcome(1, 0.0, 0.0, 1.0, 1.0); // ratio 1.0/1.5
        let m = FleetMetrics::from_outcomes(&[bad, good], [1.0], 0.0);
        assert!(
            m.p99_slo_ratio.is_infinite(),
            "an impossible deadline must dominate the p99 ratio, got {}",
            m.p99_slo_ratio
        );
        // And it still counts as a miss in the rate.
        assert_eq!(m.slo_misses, 1);
    }
}
