//! Property tests for feature mining and phase classification: invariants
//! that must hold for *any* generated function.

use astro_compiler::{classify, extract_function_features, PhaseMap, ProgramPhase};
use astro_ir::{FunctionBuilder, LibCall, Module, Ty, Value};
use proptest::prelude::*;

/// Instruction recipes the generator can emit.
#[derive(Clone, Copy, Debug)]
enum Item {
    Load,
    Store,
    IntOp,
    FpOp,
    IoCall,
    Lock,
    Barrier,
    Sleep,
    Net,
    Math,
}

fn item_strategy() -> impl Strategy<Value = Item> {
    prop_oneof![
        Just(Item::Load),
        Just(Item::Store),
        Just(Item::IntOp),
        Just(Item::FpOp),
        Just(Item::IoCall),
        Just(Item::Lock),
        Just(Item::Barrier),
        Just(Item::Sleep),
        Just(Item::Net),
        Just(Item::Math),
    ]
}

fn emit(b: &mut FunctionBuilder, item: Item) {
    match item {
        Item::Load => {
            b.load(Ty::I64);
        }
        Item::Store => b.store(Ty::I64, Value::int(1)),
        Item::IntOp => {
            b.iadd(Ty::I64, Value::int(1), Value::int(2));
        }
        Item::FpOp => {
            b.fmul(Ty::F64, Value::float(1.0), Value::float(2.0));
        }
        Item::IoCall => {
            b.call_lib(LibCall::ReadFile, &[]);
        }
        Item::Lock => {
            b.call_lib(LibCall::MutexLock, &[Value::int(0)]);
        }
        Item::Barrier => {
            b.call_lib(LibCall::BarrierWait, &[Value::int(0)]);
        }
        Item::Sleep => {
            b.call_lib(LibCall::Sleep, &[Value::int(10)]);
        }
        Item::Net => {
            b.call_lib(LibCall::NetRecv, &[]);
        }
        Item::Math => {
            b.call_lib(LibCall::MathF64, &[]);
        }
    }
}

fn build(items: &[Item], depth: u8) -> astro_ir::Function {
    let mut b = FunctionBuilder::new("f", Ty::Void);
    match depth {
        0 => {
            for &i in items {
                emit(&mut b, i);
            }
        }
        1 => {
            b.counted_loop(4, |b| {
                for &i in items {
                    emit(b, i);
                }
            });
        }
        _ => {
            b.counted_loop(4, |b| {
                b.counted_loop(4, |b| {
                    for &i in items {
                        emit(b, i);
                    }
                });
            });
        }
    }
    b.ret(None);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Densities are fractions: in [0, 1], and disjoint classes sum ≤ 1.
    #[test]
    fn densities_are_fractions(items in prop::collection::vec(item_strategy(), 1..40),
                               depth in 0u8..3) {
        let f = build(&items, depth);
        let fv = extract_function_features(&f);
        for d in [fv.io_dens, fv.mem_dens, fv.int_dens, fv.fp_dens, fv.locks_dens] {
            prop_assert!((0.0..=1.0).contains(&d), "density {d} out of range");
        }
        prop_assert!(fv.io_dens + fv.mem_dens + fv.int_dens + fv.fp_dens <= 1.0 + 1e-9);
        prop_assert!(fv.arith_density <= 1.0 + 1e-9);
    }

    /// Dormant flags fire iff the corresponding call is present.
    #[test]
    fn dormant_flags_iff_calls(items in prop::collection::vec(item_strategy(), 1..40),
                               depth in 0u8..3) {
        let f = build(&items, depth);
        let fv = extract_function_features(&f);
        let has = |p: fn(&Item) -> bool| items.iter().any(|i| p(i));
        prop_assert_eq!(fv.barrier, has(|i| matches!(i, Item::Barrier)));
        prop_assert_eq!(fv.sleep, has(|i| matches!(i, Item::Sleep)));
        prop_assert_eq!(fv.net, has(|i| matches!(i, Item::Net)));
    }

    /// The paper's classification rules, restated independently, agree
    /// with the implementation for any feature vector the miner produces.
    #[test]
    fn classification_matches_rules(items in prop::collection::vec(item_strategy(), 1..40),
                                    depth in 0u8..3) {
        let f = build(&items, depth);
        let fv = extract_function_features(&f);
        let blocked = fv.barrier || fv.net || fv.sleep || fv.locks_dens > 0.5;
        let expected = if blocked {
            ProgramPhase::Blocked
        } else if fv.io_dens + fv.mem_dens > 0.5 && fv.locks_dens == 0.0 {
            ProgramPhase::IoBound
        } else if fv.int_dens + fv.fp_dens > 0.5 {
            ProgramPhase::CpuBound
        } else {
            ProgramPhase::Other
        };
        prop_assert_eq!(classify(&fv), expected);
    }

    /// Instrumenting then stripping leaves features untouched (full
    /// round-trip through the compiler pipeline).
    #[test]
    fn instrument_strip_feature_roundtrip(items in prop::collection::vec(item_strategy(), 1..25),
                                          depth in 0u8..3) {
        let mut m = Module::new("m");
        let id = m.add_function(build(&items, depth));
        m.set_entry(id);
        let before = extract_function_features(m.function(id));
        let phases = PhaseMap::compute(&m);
        astro_compiler::instrument_for_learning(&mut m, &phases);
        astro_compiler::FinalCodegen::new(
            astro_compiler::CodegenMode::Hybrid,
            [0; 4],
        ).run(&mut m, &phases);
        astro_compiler::strip_astro_instrumentation(&mut m);
        let after = extract_function_features(m.function(id));
        prop_assert_eq!(before, after);
    }

    /// Nesting factor equals the generator's loop depth.
    #[test]
    fn nesting_factor_matches_depth(items in prop::collection::vec(item_strategy(), 1..10),
                                    depth in 0u8..3) {
        let f = build(&items, depth);
        let fv = extract_function_features(&f);
        prop_assert_eq!(fv.nesting_factor, depth as u32);
    }
}
