//! Feature ranges and phase spaces (Definition 3.3 / Example 3.4).
//!
//! A *feature range* partitions one feature's domain into contiguous
//! intervals; a *program phase* in the general framework is one cell of
//! the product of several features' partitions. The paper's production
//! system uses the fixed four-phase rule of [`crate::phase`], but the
//! generic machinery is exercised in Figure 6 and available to users who
//! want finer partitions.

use crate::features::FeatureVector;

/// A partition of `[0, +∞)` into contiguous buckets.
///
/// Bucket `i` covers `[boundaries[i-1], boundaries[i])`, with bucket 0
/// starting at 0 and the last bucket extending to `+∞`.
#[derive(Clone, Debug, PartialEq)]
pub struct RangeSet {
    name: String,
    boundaries: Vec<f64>,
}

impl RangeSet {
    /// Build a range set from strictly increasing interior boundaries.
    ///
    /// # Panics
    /// Panics if the boundaries are not strictly increasing or any is
    /// non-positive/NaN.
    pub fn new(name: impl Into<String>, boundaries: &[f64]) -> Self {
        for w in boundaries.windows(2) {
            assert!(w[0] < w[1], "range boundaries must be strictly increasing");
        }
        for &b in boundaries {
            assert!(
                b > 0.0 && b.is_finite(),
                "boundaries must be positive finite"
            );
        }
        RangeSet {
            name: name.into(),
            boundaries: boundaries.to_vec(),
        }
    }

    /// The feature name this partition applies to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of buckets (`boundaries.len() + 1`).
    pub fn num_buckets(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Which bucket does `x` fall into? Negative values clamp to bucket 0.
    pub fn bucket(&self, x: f64) -> usize {
        self.boundaries.iter().take_while(|&&b| x >= b).count()
    }
}

/// The product of several feature partitions: the general notion of a
/// program-phase space.
#[derive(Clone, Debug)]
pub struct PhaseSpace {
    dims: Vec<RangeSet>,
}

impl PhaseSpace {
    /// Build a phase space from per-feature partitions.
    pub fn new(dims: Vec<RangeSet>) -> Self {
        assert!(!dims.is_empty(), "phase space needs at least one dimension");
        PhaseSpace { dims }
    }

    /// The Example 3.4 space: arithmetic density × nesting factor × I/O
    /// weight, with the intervals quoted in the paper
    /// (3 × 3 × 4 = 36 phases).
    pub fn example_3_4() -> Self {
        PhaseSpace::new(vec![
            RangeSet::new("arith_density", &[0.25, 0.50]),
            RangeSet::new("nesting_factor", &[2.0, 4.0]),
            RangeSet::new("io_weight", &[1.0, 10.0, 100.0]),
        ])
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of phases (product of bucket counts).
    pub fn num_phases(&self) -> usize {
        self.dims.iter().map(|d| d.num_buckets()).product()
    }

    /// Per-dimension bucket of a feature point.
    ///
    /// # Panics
    /// Panics if `values.len() != num_dims()`.
    pub fn buckets(&self, values: &[f64]) -> Vec<usize> {
        assert_eq!(values.len(), self.dims.len(), "dimension mismatch");
        self.dims
            .iter()
            .zip(values)
            .map(|(d, &v)| d.bucket(v))
            .collect()
    }

    /// Flat phase index of a feature point (row-major over dimensions).
    pub fn phase_of(&self, values: &[f64]) -> usize {
        let bs = self.buckets(values);
        let mut idx = 0usize;
        for (d, b) in self.dims.iter().zip(bs) {
            idx = idx * d.num_buckets() + b;
        }
        idx
    }

    /// Phase index for the Example 3.4 space applied to a mined
    /// [`FeatureVector`].
    pub fn phase_of_features(&self, fv: &FeatureVector) -> usize {
        self.phase_of(&[fv.arith_density, fv.nesting_factor as f64, fv.io_weight])
    }

    /// The dimensions.
    pub fn dims(&self) -> &[RangeSet] {
        &self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_half_open() {
        let r = RangeSet::new("x", &[0.25, 0.50]);
        assert_eq!(r.num_buckets(), 3);
        assert_eq!(r.bucket(0.0), 0);
        assert_eq!(r.bucket(0.2499), 0);
        assert_eq!(r.bucket(0.25), 1, "left-closed at the boundary");
        assert_eq!(r.bucket(0.49), 1);
        assert_eq!(r.bucket(0.50), 2);
        assert_eq!(r.bucket(123.0), 2, "last bucket extends to +inf");
        assert_eq!(r.bucket(-1.0), 0, "negatives clamp to bucket 0");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_boundaries_rejected() {
        RangeSet::new("x", &[0.5, 0.25]);
    }

    #[test]
    fn example_3_4_has_36_phases() {
        let ps = PhaseSpace::example_3_4();
        assert_eq!(ps.num_phases(), 36);
        assert_eq!(ps.num_dims(), 3);
    }

    #[test]
    fn example_3_4_maps_paper_main_function() {
        // Example 3.5: main has Arith.Density ∈ [0,0.25), IO Weight ∈ [0,1)
        // and NestingFactor ∈ [0,1) → all three in bucket 0 → phase 0.
        let ps = PhaseSpace::example_3_4();
        assert_eq!(ps.phase_of(&[0.12, 0.0, 0.8]), 0);
    }

    #[test]
    fn phase_index_is_row_major_and_bijective_on_buckets() {
        let ps = PhaseSpace::new(vec![
            RangeSet::new("a", &[1.0]),
            RangeSet::new("b", &[1.0, 2.0]),
        ]);
        assert_eq!(ps.num_phases(), 6);
        let mut seen = std::collections::HashSet::new();
        for a in [0.5, 1.5] {
            for b in [0.5, 1.5, 2.5] {
                seen.insert(ps.phase_of(&[a, b]));
            }
        }
        assert_eq!(seen.len(), 6, "all cells reachable and distinct");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_arity_rejected() {
        PhaseSpace::example_3_4().phase_of(&[1.0]);
    }
}
