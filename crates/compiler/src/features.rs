//! Code-level feature mining (§3.1.1 of the paper).
//!
//! A *code-level feature* is a syntactic characteristic of a function.
//! Astro's implementation uses density features — counts of a given
//! instruction kind normalised by the function's total instruction count —
//! plus boolean flags for calls that put the program to sleep. This module
//! also computes the three illustrative features of Example 3.4
//! (arithmetic density, nesting-weighted I/O weight, nesting factor),
//! which Figure 6 plots for the matrix-multiplication demo.

use astro_ir::visit::for_each_instr_with_depth;
use astro_ir::{Function, FunctionId, Module, Opcode};

/// The static features of one function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeatureVector {
    /// Proportion of library calls that perform I/O operations.
    pub io_dens: f64,
    /// Proportion of instructions that access memory (loads and stores).
    pub mem_dens: f64,
    /// Proportion of arithmetic/logic instructions on integer types.
    pub int_dens: f64,
    /// Proportion of arithmetic/logic instructions on floating-point types.
    pub fp_dens: f64,
    /// Proportion of lock instructions.
    pub locks_dens: f64,
    /// True when the function invokes a multi-thread barrier.
    pub barrier: bool,
    /// True when the function waits on a network event.
    pub net: bool,
    /// True when the function calls sleep.
    pub sleep: bool,
    // ---- Example 3.4 illustrative features (Figure 6) ----------------------
    /// Density of arithmetic and logic instructions (int + fp combined).
    pub arith_density: f64,
    /// `Σᵢ 10ⁿ` for every I/O call `i` nested in `n` loops — the paper's
    /// heuristic expectation of I/O routine invocations.
    pub io_weight: f64,
    /// Maximum loop-nesting depth in the function.
    pub nesting_factor: u32,
    /// Total instructions counted (denominator of the densities).
    pub total_instrs: u64,
}

impl FeatureVector {
    /// The all-zero vector (used for functions the miner cannot analyse,
    /// e.g. mangled C++ symbols — see §4 "Benchmarks").
    pub const ZERO: FeatureVector = FeatureVector {
        io_dens: 0.0,
        mem_dens: 0.0,
        int_dens: 0.0,
        fp_dens: 0.0,
        locks_dens: 0.0,
        barrier: false,
        net: false,
        sleep: false,
        arith_density: 0.0,
        io_weight: 0.0,
        nesting_factor: 0,
        total_instrs: 0,
    };

    /// Does any dormant-wait flag hold?
    pub fn any_dormant(&self) -> bool {
        self.barrier || self.net || self.sleep
    }

    /// The feature values as a fixed-order numeric slice, for encoding
    /// into learning inputs and the range machinery:
    /// `[io, mem, int, fp, locks, barrier, net, sleep]`.
    pub fn as_array(&self) -> [f64; 8] {
        [
            self.io_dens,
            self.mem_dens,
            self.int_dens,
            self.fp_dens,
            self.locks_dens,
            self.barrier as u8 as f64,
            self.net as u8 as f64,
            self.sleep as u8 as f64,
        ]
    }
}

/// Mine the features of a single function.
///
/// Counting rules:
/// * Astro's own instrumentation intrinsics are invisible (they are
///   inserted after mining and must not perturb re-mining);
/// * terminators are not counted (they carry no mix information);
/// * densities are fractions of the counted instruction total;
/// * mangled functions yield [`FeatureVector::ZERO`] — the paper's LLVM
///   module "does not recognize mangled C++ routines".
pub fn extract_function_features(f: &Function) -> FeatureVector {
    if f.mangled {
        return FeatureVector::ZERO;
    }

    let mut total = 0u64;
    let mut io = 0u64;
    let mut mem = 0u64;
    let mut int = 0u64;
    let mut fp = 0u64;
    let mut locks = 0u64;
    let mut barrier = false;
    let mut net = false;
    let mut sleep = false;
    let mut io_weight = 0.0f64;
    let mut nesting = 0u32;

    for_each_instr_with_depth(f, |_, depth, ins| {
        let op = ins.opcode();
        if let Opcode::CallLib(lc) = op {
            if lc.is_astro_intrinsic() {
                return;
            }
            match lc.blocking_kind() {
                Some(astro_ir::BlockingKind::Barrier) => barrier = true,
                Some(astro_ir::BlockingKind::Net) => net = true,
                Some(astro_ir::BlockingKind::Sleep) => sleep = true,
                _ => {}
            }
        }
        total += 1;
        nesting = nesting.max(depth);
        if op.is_io() {
            io += 1;
            io_weight += 10f64.powi(depth as i32);
        }
        if op.is_mem() {
            mem += 1;
        }
        if op.is_int_arith() {
            int += 1;
        }
        if op.is_fp_arith() {
            fp += 1;
        }
        if op.is_lock() {
            locks += 1;
        }
    });

    if total == 0 {
        return FeatureVector {
            barrier,
            net,
            sleep,
            ..FeatureVector::ZERO
        };
    }
    let t = total as f64;
    FeatureVector {
        io_dens: io as f64 / t,
        mem_dens: mem as f64 / t,
        int_dens: int as f64 / t,
        fp_dens: fp as f64 / t,
        locks_dens: locks as f64 / t,
        barrier,
        net,
        sleep,
        arith_density: (int + fp) as f64 / t,
        io_weight,
        nesting_factor: nesting,
        total_instrs: total,
    }
}

/// Mine features for every function of a module, indexable by
/// [`FunctionId`].
pub fn extract_module_features(m: &Module) -> Vec<FeatureVector> {
    m.functions.iter().map(extract_function_features).collect()
}

/// Convenience: features of the function with the given id.
pub fn features_of(m: &Module, f: FunctionId) -> FeatureVector {
    extract_function_features(m.function(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_ir::{FunctionBuilder, LibCall, Ty, Value};

    #[test]
    fn pure_fp_kernel_is_fp_dense() {
        let mut b = FunctionBuilder::new("k", Ty::Void);
        for _ in 0..8 {
            let x = b.load(Ty::F64);
            let y = b.fmul(Ty::F64, x, x);
            b.fadd(Ty::F64, y, y);
        }
        b.ret(None);
        let fv = extract_function_features(&b.finish());
        // 8 loads, 16 fp ops → fp_dens = 16/24, mem = 8/24.
        assert!((fv.fp_dens - 16.0 / 24.0).abs() < 1e-12);
        assert!((fv.mem_dens - 8.0 / 24.0).abs() < 1e-12);
        assert_eq!(fv.int_dens, 0.0);
        assert_eq!(fv.io_dens, 0.0);
        assert!(!fv.any_dormant());
    }

    #[test]
    fn io_weight_scales_with_nesting() {
        // One I/O call at depth 0 → weight 1; one at depth 2 → weight 100.
        let mut b = FunctionBuilder::new("f", Ty::Void);
        b.call_lib(LibCall::ReadFile, &[]);
        b.counted_loop(4, |b| {
            b.counted_loop(4, |b| {
                b.call_lib(LibCall::WriteFile, &[]);
            });
        });
        b.ret(None);
        let fv = extract_function_features(&b.finish());
        assert_eq!(fv.io_weight, 1.0 + 100.0);
        assert_eq!(fv.nesting_factor, 2);
    }

    #[test]
    fn dormant_flags_fire() {
        let mut b = FunctionBuilder::new("f", Ty::Void);
        b.call_lib(LibCall::BarrierWait, &[Value::int(0)]);
        b.call_lib(LibCall::Sleep, &[Value::int(1000)]);
        b.ret(None);
        let fv = extract_function_features(&b.finish());
        assert!(fv.barrier);
        assert!(fv.sleep);
        assert!(!fv.net);
        assert!(fv.any_dormant());
    }

    #[test]
    fn lock_density_counts_lock_and_unlock() {
        let mut b = FunctionBuilder::new("f", Ty::Void);
        b.call_lib(LibCall::MutexLock, &[Value::int(0)]);
        b.load(Ty::I64);
        b.call_lib(LibCall::MutexUnlock, &[Value::int(0)]);
        b.ret(None);
        let fv = extract_function_features(&b.finish());
        assert!((fv.locks_dens - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn astro_intrinsics_invisible_to_miner() {
        let mut plain = FunctionBuilder::new("f", Ty::Void);
        plain.load(Ty::I64);
        plain.ret(None);
        let base = extract_function_features(&plain.finish());

        let mut instrumented = FunctionBuilder::new("g", Ty::Void);
        instrumented.call_lib(LibCall::AstroLogPhase, &[Value::int(2)]);
        instrumented.load(Ty::I64);
        instrumented.call_lib(LibCall::AstroSetConfig, &[Value::int(5)]);
        instrumented.ret(None);
        let instr = extract_function_features(&instrumented.finish());

        assert_eq!(base.mem_dens, instr.mem_dens);
        assert_eq!(base.total_instrs, instr.total_instrs);
    }

    #[test]
    fn mangled_functions_yield_zero() {
        let mut b = FunctionBuilder::new("_ZN3fooE", Ty::Void);
        b.mangled();
        b.load(Ty::F64);
        b.ret(None);
        assert_eq!(extract_function_features(&b.finish()), FeatureVector::ZERO);
    }

    #[test]
    fn empty_function_is_zero_but_valid() {
        let mut b = FunctionBuilder::new("empty", Ty::Void);
        b.ret(None);
        let fv = extract_function_features(&b.finish());
        assert_eq!(fv.total_instrs, 0);
        assert_eq!(fv.mem_dens, 0.0);
    }

    #[test]
    fn densities_sum_at_most_one_for_disjoint_classes() {
        let mut b = FunctionBuilder::new("mix", Ty::Void);
        b.counted_loop(10, |b| {
            let x = b.load(Ty::F64);
            b.fadd(Ty::F64, x, x);
            let i = b.iadd(Ty::I64, Value::int(0), Value::int(1));
            b.store(Ty::I64, i);
            b.call_lib(LibCall::ReadFile, &[]);
        });
        b.ret(None);
        let fv = extract_function_features(&b.finish());
        // io, mem, int, fp have disjoint numerators.
        assert!(fv.io_dens + fv.mem_dens + fv.int_dens + fv.fp_dens <= 1.0 + 1e-12);
    }
}
