//! A minimal pass manager: named module transforms with inter-pass
//! verification, mirroring how the paper chains `Extractor → Annotator →
//! CodeGen` through `LLVM-opt` (Figure 5).

use crate::codegen::{strip_astro_instrumentation, CodegenMode, FinalCodegen};
use crate::instrument::instrument_for_learning;
use crate::phase::{PhaseMap, ProgramPhase};
use astro_ir::{Module, VerifyError};

/// A module transformation.
pub trait Pass {
    /// Short pass name for reports.
    fn name(&self) -> &'static str;
    /// Apply the pass; returns a one-line human-readable note.
    fn run(&mut self, m: &mut Module) -> String;
}

/// Runs passes in order, optionally verifying the module between passes.
pub struct PassManager {
    /// Verify after every pass (on by default; the paper's pipeline runs
    /// `opt` repeatedly, which implies verification).
    pub verify_between: bool,
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager {
            verify_between: true,
        }
    }
}

impl PassManager {
    /// Run all passes; returns per-pass notes, or the first verification
    /// failure.
    pub fn run(
        &self,
        m: &mut Module,
        passes: &mut [Box<dyn Pass>],
    ) -> Result<Vec<String>, VerifyError> {
        let mut notes = Vec::with_capacity(passes.len());
        for p in passes {
            let note = p.run(m);
            notes.push(format!("{}: {}", p.name(), note));
            if self.verify_between {
                m.verify()?;
            }
        }
        Ok(notes)
    }
}

/// Pass wrapper: learning-mode instrumentation (recomputes phases).
pub struct LearningInstrumentationPass;

impl Pass for LearningInstrumentationPass {
    fn name(&self) -> &'static str {
        "astro-learning-instrument"
    }
    fn run(&mut self, m: &mut Module) -> String {
        let phases = PhaseMap::compute(m);
        let rep = instrument_for_learning(m, &phases);
        format!(
            "{} entry markers, {} toggle pairs",
            rep.entry_markers, rep.toggle_pairs
        )
    }
}

/// Pass wrapper: strip all Astro intrinsics.
pub struct StripInstrumentationPass;

impl Pass for StripInstrumentationPass {
    fn name(&self) -> &'static str {
        "astro-strip"
    }
    fn run(&mut self, m: &mut Module) -> String {
        let n = strip_astro_instrumentation(m);
        format!("removed {n} intrinsics")
    }
}

/// Pass wrapper: final code generation with a learned table.
pub struct FinalCodegenPass {
    /// Emission mode (static/hybrid).
    pub mode: CodegenMode,
    /// Learned phase→configuration table.
    pub config_for_phase: [usize; ProgramPhase::COUNT],
}

impl Pass for FinalCodegenPass {
    fn name(&self) -> &'static str {
        "astro-final-codegen"
    }
    fn run(&mut self, m: &mut Module) -> String {
        let phases = PhaseMap::compute(m);
        let cg = FinalCodegen::new(self.mode, self.config_for_phase);
        let n = cg.run(m, &phases);
        format!("{n} decision points ({:?})", self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_ir::{FunctionBuilder, LibCall, Ty, Value};

    fn demo() -> Module {
        let mut m = Module::new("demo");
        let mut main = FunctionBuilder::new("main", Ty::Void);
        main.call_lib(LibCall::Sleep, &[Value::int(1)]);
        main.ret(None);
        let f = m.add_function(main.finish());
        m.set_entry(f);
        m
    }

    #[test]
    fn pipeline_instrument_strip_roundtrips() {
        let mut m = demo();
        let before = m.total_instrs();
        let pm = PassManager::default();
        let notes = pm
            .run(
                &mut m,
                &mut [
                    Box::new(LearningInstrumentationPass),
                    Box::new(StripInstrumentationPass),
                ],
            )
            .expect("verifies between passes");
        assert_eq!(notes.len(), 2);
        assert!(notes[0].contains("entry markers"));
        assert_eq!(m.total_instrs(), before);
    }

    #[test]
    fn final_codegen_pass_reports_mode() {
        let mut m = demo();
        let pm = PassManager::default();
        let notes = pm
            .run(
                &mut m,
                &mut [Box::new(FinalCodegenPass {
                    mode: CodegenMode::Hybrid,
                    config_for_phase: [0; 4],
                })],
            )
            .unwrap();
        assert!(notes[0].contains("Hybrid"));
    }
}
