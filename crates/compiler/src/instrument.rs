//! Learning-mode instrumentation (Figure 8a of the paper).
//!
//! The instrumented program announces its own phase changes to the Astro
//! runtime: a `save_feature_range`-style marker at every function entry,
//! and `toggle_sleeping_state` markers around library calls that put the
//! program to sleep (barriers, network waits, sleeps). Both are modelled
//! as Astro intrinsics ([`LibCall::AstroLogPhase`],
//! [`LibCall::AstroToggleBlocked`]) that the execution engine interprets.

use crate::phase::PhaseMap;
use astro_ir::{Instr, InstrKind, LibCall, Module, Value};

/// What the instrumentation pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrumentationReport {
    /// Functions that received an entry marker.
    pub functions_instrumented: usize,
    /// Entry-point phase markers inserted.
    pub entry_markers: usize,
    /// `toggle_blocked` pairs inserted around dormant library calls.
    pub toggle_pairs: usize,
}

fn intrinsic(callee: LibCall, imm: i64) -> Instr {
    Instr {
        result: None,
        kind: InstrKind::CallLib {
            callee,
            args: vec![Value::int(imm)],
        },
    }
}

/// Is this instruction a library call that forces the program to wait for
/// an external event (the calls §3.1.1 wraps with phase toggles)?
fn is_dormant_call(ins: &Instr) -> bool {
    matches!(
        &ins.kind,
        InstrKind::CallLib { callee, .. } if callee.is_dormant_wait()
    )
}

/// Instrument `m` for the learning phase.
///
/// * At the entry of every function: `astro.log_phase(phase_index)`.
/// * Around every dormant library call: `astro.toggle_blocked(1)` before
///   and `astro.toggle_blocked(0)` after.
///
/// Functions whose features the miner cannot see (mangled C++ symbols)
/// still get an entry marker — their phase is `Other` per the zero
/// feature vector — matching the paper's behaviour of scheduling unknown
/// code conservatively.
pub fn instrument_for_learning(m: &mut Module, phases: &PhaseMap) -> InstrumentationReport {
    let mut report = InstrumentationReport::default();

    for (fid, f) in m
        .functions
        .iter_mut()
        .enumerate()
        .map(|(i, f)| (astro_ir::FunctionId(i as u32), f))
    {
        let phase = phases.phase(fid);

        // Entry marker, prepended to the entry block.
        let entry = f.entry;
        f.block_mut(entry)
            .instrs
            .insert(0, intrinsic(LibCall::AstroLogPhase, phase.index() as i64));
        report.functions_instrumented += 1;
        report.entry_markers += 1;

        // Toggle pairs around dormant calls, in every block.
        for b in &mut f.blocks {
            // Positions of dormant calls, found first so we can insert
            // back-to-front without invalidating indices.
            let sites: Vec<usize> = b
                .instrs
                .iter()
                .enumerate()
                .filter(|(_, ins)| is_dormant_call(ins))
                .map(|(i, _)| i)
                .collect();
            for &i in sites.iter().rev() {
                b.instrs
                    .insert(i + 1, intrinsic(LibCall::AstroToggleBlocked, 0));
                b.instrs
                    .insert(i, intrinsic(LibCall::AstroToggleBlocked, 1));
                report.toggle_pairs += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{PhaseMap, ProgramPhase};
    use astro_ir::{FunctionBuilder, Opcode, Ty};

    fn build_demo() -> Module {
        let mut m = Module::new("demo");
        let mut main = FunctionBuilder::new("main", Ty::Void);
        main.load(Ty::I64);
        main.call_lib(LibCall::Sleep, &[Value::int(100)]);
        main.counted_loop(4, |b| {
            let x = b.load(Ty::F64);
            b.fmul(Ty::F64, x, x);
        });
        main.ret(None);
        let f = m.add_function(main.finish());
        m.set_entry(f);
        m
    }

    #[test]
    fn entry_marker_is_first_instruction() {
        let mut m = build_demo();
        let phases = PhaseMap::compute(&m);
        let rep = instrument_for_learning(&mut m, &phases);
        assert_eq!(rep.entry_markers, 1);
        let f = m.function(m.entry.unwrap());
        let first = &f.block(f.entry).instrs[0];
        match &first.kind {
            InstrKind::CallLib { callee, args } => {
                assert_eq!(*callee, LibCall::AstroLogPhase);
                // main sleeps → Blocked phase index 0.
                assert_eq!(
                    args[0].as_const_int(),
                    Some(ProgramPhase::Blocked.index() as i64)
                );
            }
            other => panic!("expected log_phase, got {other:?}"),
        }
    }

    #[test]
    fn toggles_bracket_dormant_calls() {
        let mut m = build_demo();
        let phases = PhaseMap::compute(&m);
        let rep = instrument_for_learning(&mut m, &phases);
        assert_eq!(rep.toggle_pairs, 1);
        let f = m.function(m.entry.unwrap());
        let entry = f.block(f.entry);
        let ops: Vec<Opcode> = entry.instrs.iter().map(|i| i.opcode()).collect();
        let sleep_at = ops
            .iter()
            .position(|o| matches!(o, Opcode::CallLib(LibCall::Sleep)))
            .expect("sleep call survives");
        assert_eq!(
            ops[sleep_at - 1],
            Opcode::CallLib(LibCall::AstroToggleBlocked)
        );
        assert_eq!(
            ops[sleep_at + 1],
            Opcode::CallLib(LibCall::AstroToggleBlocked)
        );
    }

    #[test]
    fn instrumented_module_still_verifies() {
        let mut m = build_demo();
        let phases = PhaseMap::compute(&m);
        instrument_for_learning(&mut m, &phases);
        assert_eq!(m.verify(), Ok(()));
    }

    #[test]
    fn instrumentation_is_invisible_to_reminer() {
        let mut m = build_demo();
        let before = PhaseMap::compute(&m);
        instrument_for_learning(&mut m, &before.clone());
        let after = PhaseMap::compute(&m);
        for (fid, p) in before.iter() {
            assert_eq!(after.phase(fid), p, "phase changed by instrumentation");
        }
    }

    #[test]
    fn multiple_dormant_calls_each_get_pairs() {
        let mut m = Module::new("m");
        let mut f = FunctionBuilder::new("main", Ty::Void);
        f.call_lib(LibCall::BarrierWait, &[Value::int(0)]);
        f.load(Ty::I32);
        f.call_lib(LibCall::NetRecv, &[]);
        f.call_lib(LibCall::Sleep, &[Value::int(5)]);
        f.ret(None);
        let id = m.add_function(f.finish());
        m.set_entry(id);
        let phases = PhaseMap::compute(&m);
        let rep = instrument_for_learning(&mut m, &phases);
        assert_eq!(rep.toggle_pairs, 3);
        assert_eq!(m.verify(), Ok(()));
    }
}
