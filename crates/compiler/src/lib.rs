//! # astro-compiler — the static half of Astro
//!
//! Everything the paper's §3.1.1 ("Phase Partitioning"), §3.2's
//! instrumentation, and §3.3 ("Code Scheduling") ask of the compiler:
//!
//! * [`features`] — mine code-level features from the IR: the density
//!   features `IO-Dens`, `Mem-Dens`, `Int-Dens`, `FP-Dens`, `Locks-Dens`
//!   and the blocking flags `Barrier`, `Net`, `Sleep`, plus the
//!   Example 3.4 heuristics (arithmetic density, loop-nesting-weighted
//!   I/O weight, nesting factor) used in Figure 6;
//! * [`ranges`] — the generic feature-range machinery of Definition 3.3:
//!   partition each feature's domain into intervals and form program
//!   phases as points of the product space;
//! * [`phase`] — the paper's concrete four-phase partition (`Blocked`,
//!   `I/O Bound`, `CPU Bound`, `Other`) and the per-module phase map;
//! * [`instrument`] — learning-mode instrumentation: log the program
//!   phase at function entries and toggle the blocked flag around
//!   dormant library calls (Figure 8a);
//! * [`codegen`] — final code generation: bake a learned policy into the
//!   program as static (Figure 8b) or hybrid (Figure 8c) actuation calls;
//! * [`size`] — the binary-size model behind Figure 11;
//! * [`pass`] — a small pass manager tying the stages together.

pub mod codegen;
pub mod features;
pub mod instrument;
pub mod pass;
pub mod phase;
pub mod ranges;
pub mod size;

pub use codegen::{strip_astro_instrumentation, CodegenMode, FinalCodegen};
pub use features::{extract_function_features, extract_module_features, FeatureVector};
pub use instrument::{instrument_for_learning, InstrumentationReport};
pub use pass::{Pass, PassManager};
pub use phase::{classify, PhaseMap, ProgramPhase};
pub use ranges::{PhaseSpace, RangeSet};
pub use size::{CodeSizeModel, SizeBreakdown};
