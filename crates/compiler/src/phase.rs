//! The paper's concrete program phases and the classification rules of
//! §3.1.1 ("Our Choice of Program Phases").

use crate::features::{extract_module_features, FeatureVector};
use astro_ir::{FunctionId, Module};
use std::fmt;

/// The four program phases Astro uses in its evaluation.
///
/// Classification rules (quoted from the paper):
/// * **Blocked**: `Barrier ∨ Net ∨ Sleep ∨ Locks-Dens > 0.5`;
/// * **I/O Bound**: `IO-Dens + Mem-Dens > 0.5 ∧ ¬Blocked ∧ Locks-Dens = 0`;
/// * **CPU Bound**: `Int-Dens + FP-Dens > 0.5 ∧ ¬Blocked`;
/// * **Other**: none of the above.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProgramPhase {
    Blocked,
    IoBound,
    CpuBound,
    Other,
}

impl ProgramPhase {
    /// All phases, index order.
    pub const ALL: [ProgramPhase; 4] = [
        ProgramPhase::Blocked,
        ProgramPhase::IoBound,
        ProgramPhase::CpuBound,
        ProgramPhase::Other,
    ];

    /// Number of phases.
    pub const COUNT: usize = 4;

    /// Dense index (stable across the codebase: encodes into learning
    /// states and instrumentation immediates).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ProgramPhase::Blocked => 0,
            ProgramPhase::IoBound => 1,
            ProgramPhase::CpuBound => 2,
            ProgramPhase::Other => 3,
        }
    }

    /// Inverse of [`ProgramPhase::index`].
    ///
    /// # Panics
    /// Panics if `i >= 4`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }
}

impl fmt::Display for ProgramPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProgramPhase::Blocked => "Blocked",
            ProgramPhase::IoBound => "I/O Bound",
            ProgramPhase::CpuBound => "CPU Bound",
            ProgramPhase::Other => "Other",
        };
        f.write_str(s)
    }
}

/// Classify a feature vector into the paper's four phases.
pub fn classify(fv: &FeatureVector) -> ProgramPhase {
    let blocked = fv.barrier || fv.net || fv.sleep || fv.locks_dens > 0.5;
    if blocked {
        return ProgramPhase::Blocked;
    }
    if fv.io_dens + fv.mem_dens > 0.5 && fv.locks_dens == 0.0 {
        return ProgramPhase::IoBound;
    }
    if fv.int_dens + fv.fp_dens > 0.5 {
        return ProgramPhase::CpuBound;
    }
    ProgramPhase::Other
}

/// Per-function phases for a whole module: the output of phase
/// partitioning, consumed by instrumentation and code generation.
#[derive(Clone, Debug)]
pub struct PhaseMap {
    phases: Vec<ProgramPhase>,
    features: Vec<FeatureVector>,
}

impl PhaseMap {
    /// Mine features and classify every function of `m`.
    pub fn compute(m: &Module) -> Self {
        let features = extract_module_features(m);
        let phases = features.iter().map(classify).collect();
        PhaseMap { phases, features }
    }

    /// Phase of function `f`.
    #[inline]
    pub fn phase(&self, f: FunctionId) -> ProgramPhase {
        self.phases[f.0 as usize]
    }

    /// Mined features of function `f`.
    #[inline]
    pub fn features(&self, f: FunctionId) -> &FeatureVector {
        &self.features[f.0 as usize]
    }

    /// Number of functions covered.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True if the module had no functions.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Iterate (function, phase).
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, ProgramPhase)> + '_ {
        self.phases
            .iter()
            .enumerate()
            .map(|(i, &p)| (FunctionId(i as u32), p))
    }

    /// How many functions landed in each phase (indexed by
    /// [`ProgramPhase::index`]).
    pub fn histogram(&self) -> [usize; ProgramPhase::COUNT] {
        let mut h = [0usize; ProgramPhase::COUNT];
        for &p in &self.phases {
            h[p.index()] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_ir::{FunctionBuilder, LibCall, Ty, Value};

    fn fv() -> FeatureVector {
        FeatureVector::ZERO
    }

    #[test]
    fn barrier_forces_blocked() {
        let mut v = fv();
        v.barrier = true;
        v.int_dens = 0.9; // would otherwise be CPU bound
        assert_eq!(classify(&v), ProgramPhase::Blocked);
    }

    #[test]
    fn heavy_locking_is_blocked() {
        let mut v = fv();
        v.locks_dens = 0.51;
        assert_eq!(classify(&v), ProgramPhase::Blocked);
        v.locks_dens = 0.5; // strictly greater required
        assert_eq!(classify(&v), ProgramPhase::Other);
    }

    #[test]
    fn io_bound_requires_zero_locks() {
        let mut v = fv();
        v.io_dens = 0.3;
        v.mem_dens = 0.3;
        assert_eq!(classify(&v), ProgramPhase::IoBound);
        v.locks_dens = 0.1; // any locking disqualifies I/O bound…
        assert_eq!(classify(&v), ProgramPhase::Other);
        v.int_dens = 0.6; // …but CPU bound tolerates it
        assert_eq!(classify(&v), ProgramPhase::CpuBound);
    }

    #[test]
    fn cpu_bound_from_arith_majority() {
        let mut v = fv();
        v.int_dens = 0.3;
        v.fp_dens = 0.25;
        assert_eq!(classify(&v), ProgramPhase::CpuBound);
    }

    #[test]
    fn defaults_to_other() {
        assert_eq!(classify(&fv()), ProgramPhase::Other);
    }

    #[test]
    fn index_roundtrip() {
        for p in ProgramPhase::ALL {
            assert_eq!(ProgramPhase::from_index(p.index()), p);
        }
    }

    #[test]
    fn phase_map_over_module() {
        let mut m = astro_ir::Module::new("m");
        // CPU-bound kernel.
        let mut k = FunctionBuilder::new("kernel", Ty::Void);
        k.counted_loop(64, |b| {
            let x = b.load(Ty::F64);
            let y = b.fmul(Ty::F64, x, x);
            b.fadd(Ty::F64, y, y);
            let i = b.iadd(Ty::I64, Value::int(0), Value::int(1));
            b.imul(Ty::I64, i, i);
        });
        k.ret(None);
        let kernel = m.add_function(k.finish());

        // Barrier-waiting function.
        let mut w = FunctionBuilder::new("sync", Ty::Void);
        w.call_lib(LibCall::BarrierWait, &[Value::int(0)]);
        w.ret(None);
        let sync = m.add_function(w.finish());
        m.set_entry(kernel);

        let pm = PhaseMap::compute(&m);
        assert_eq!(pm.phase(kernel), ProgramPhase::CpuBound);
        assert_eq!(pm.phase(sync), ProgramPhase::Blocked);
        assert_eq!(pm.len(), 2);
        let h = pm.histogram();
        assert_eq!(h[ProgramPhase::Blocked.index()], 1);
        assert_eq!(h[ProgramPhase::CpuBound.index()], 1);
    }
}
