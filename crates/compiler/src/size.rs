//! Binary-size model (Figure 11, RQ5).
//!
//! The paper distinguishes three builds of each benchmark:
//!
//! * **Original** — no Astro involvement;
//! * **Learning** — phase markers inserted, *statically* linked, no
//!   runtime library ("in the Learning phase, binaries do not use any
//!   dynamically linked library; thus, code size expansion is due to
//!   instrumentation only, and it is small");
//! * **Instrumented** — final static or hybrid build, which carries the
//!   Astro runtime library ("most of the size overhead imposed by Astro
//!   is due to its dynamic library; this increase is constant across
//!   benchmarks").
//!
//! We model the same accounting: a fixed ELF/base overhead, a per-
//! instruction encoding cost, a per-intrinsic marker cost (a call
//! sequence: argument materialisation + call), and a constant runtime
//! library cost.

use astro_ir::{InstrKind, Module};

/// Tunable byte costs of the size model. Defaults are calibrated to land
/// in the tens-of-KB range of Figure 11 for benchmark-sized programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeSizeModel {
    /// Encoded bytes per ordinary IR instruction (ARM-ish mix of 4-byte
    /// instructions plus literal pools and alignment).
    pub bytes_per_instr: u64,
    /// Fixed executable overhead: ELF headers, startup files, libc stubs.
    pub base_bytes: u64,
    /// Bytes per Astro intrinsic call site (materialise immediate +
    /// call + PLT stub amortisation).
    pub marker_bytes: u64,
    /// Size of the Astro runtime library linked into final builds.
    pub runtime_lib_bytes: u64,
}

impl Default for CodeSizeModel {
    fn default() -> Self {
        CodeSizeModel {
            bytes_per_instr: 14,
            base_bytes: 9 * 1024,
            marker_bytes: 24,
            runtime_lib_bytes: 44 * 1024,
        }
    }
}

/// Sizes of the three builds of one benchmark, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeBreakdown {
    /// Unmodified program.
    pub original: u64,
    /// Learning build (markers only, no runtime library).
    pub learning: u64,
    /// Final build (markers + runtime library).
    pub instrumented: u64,
}

impl SizeBreakdown {
    /// Original size in KB (floating, for report tables).
    pub fn original_kb(&self) -> f64 {
        self.original as f64 / 1024.0
    }
    /// Learning size in KB.
    pub fn learning_kb(&self) -> f64 {
        self.learning as f64 / 1024.0
    }
    /// Instrumented size in KB.
    pub fn instrumented_kb(&self) -> f64 {
        self.instrumented as f64 / 1024.0
    }
}

/// Count (ordinary instructions incl. terminators, astro intrinsics).
fn census(m: &Module) -> (u64, u64) {
    let mut plain = 0u64;
    let mut intrinsics = 0u64;
    for f in &m.functions {
        for b in &f.blocks {
            for ins in &b.instrs {
                match &ins.kind {
                    InstrKind::CallLib { callee, .. } if callee.is_astro_intrinsic() => {
                        intrinsics += 1
                    }
                    _ => plain += 1,
                }
            }
            plain += 1; // terminator
        }
    }
    (plain, intrinsics)
}

impl CodeSizeModel {
    /// Size of one build. `linked_runtime` says whether the Astro runtime
    /// library is part of the binary (final builds) or not (original and
    /// learning builds).
    pub fn binary_size(&self, m: &Module, linked_runtime: bool) -> u64 {
        let (plain, intrinsics) = census(m);
        self.base_bytes
            + plain * self.bytes_per_instr
            + intrinsics * self.marker_bytes
            + if linked_runtime {
                self.runtime_lib_bytes
            } else {
                0
            }
    }

    /// The Figure 11 triple for one benchmark, given the three builds.
    pub fn breakdown(
        &self,
        original: &Module,
        learning: &Module,
        instrumented: &Module,
    ) -> SizeBreakdown {
        SizeBreakdown {
            original: self.binary_size(original, false),
            learning: self.binary_size(learning, false),
            instrumented: self.binary_size(instrumented, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{CodegenMode, FinalCodegen};
    use crate::instrument::instrument_for_learning;
    use crate::phase::PhaseMap;
    use astro_ir::{FunctionBuilder, LibCall, Ty, Value};

    fn program(n_kernels: usize) -> Module {
        let mut m = Module::new("p");
        let mut main = FunctionBuilder::new("main", Ty::Void);
        for _ in 0..n_kernels {
            main.counted_loop(16, |b| {
                let x = b.load(Ty::F64);
                b.fmul(Ty::F64, x, x);
            });
        }
        main.call_lib(LibCall::BarrierWait, &[Value::int(0)]);
        main.ret(None);
        let f = m.add_function(main.finish());
        m.set_entry(f);
        m
    }

    fn builds(m: &Module) -> (Module, Module, Module) {
        let original = m.clone();
        let phases = PhaseMap::compute(m);
        let mut learning = m.clone();
        instrument_for_learning(&mut learning, &phases);
        let mut fin = m.clone();
        FinalCodegen::new(CodegenMode::Static, [0, 1, 2, 3]).run(&mut fin, &phases);
        (original, learning, fin)
    }

    #[test]
    fn ordering_original_le_learning_le_instrumented() {
        let m = program(4);
        let (o, l, f) = builds(&m);
        let bd = CodeSizeModel::default().breakdown(&o, &l, &f);
        assert!(bd.original < bd.learning);
        assert!(bd.learning < bd.instrumented);
    }

    #[test]
    fn library_dominates_growth() {
        // The gap (instrumented − learning) must be ≈ the library size and
        // identical across differently-sized programs.
        let model = CodeSizeModel::default();
        let gaps: Vec<u64> = [2usize, 8, 32]
            .iter()
            .map(|&n| {
                let m = program(n);
                let (o, l, f) = builds(&m);
                let bd = model.breakdown(&o, &l, &f);
                assert!(bd.instrumented - bd.learning >= model.runtime_lib_bytes);
                bd.instrumented - bd.original
            })
            .collect();
        // Growth is dominated by the constant library: the spread of total
        // growth across programs is far smaller than the library itself.
        let min = *gaps.iter().min().unwrap();
        let max = *gaps.iter().max().unwrap();
        assert!(max - min < model.runtime_lib_bytes / 4);
    }

    #[test]
    fn instrumentation_growth_linear_in_markers() {
        let model = CodeSizeModel::default();
        let m = program(4);
        let (o, l, _) = builds(&m);
        let (_, intr) = census(&l);
        assert_eq!(
            model.binary_size(&l, false) - model.binary_size(&o, false),
            intr * model.marker_bytes
        );
    }

    #[test]
    fn kb_helpers_divide() {
        let bd = SizeBreakdown {
            original: 10 * 1024,
            learning: 11 * 1024,
            instrumented: 55 * 1024,
        };
        assert_eq!(bd.original_kb(), 10.0);
        assert_eq!(bd.learning_kb(), 11.0);
        assert_eq!(bd.instrumented_kb(), 55.0);
    }
}
