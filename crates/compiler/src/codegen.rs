//! Final code generation (§3.3, Figure 8b/8c).
//!
//! After training, the learned policy is imprinted into the program:
//!
//! * **Static** instrumentation maps every program phase to one fixed
//!   hardware configuration — `determine_active_configuration(cfg)` at
//!   function entries and around dormant calls (Figure 8b). Lowest
//!   overhead, but it "cannot recover from bad decisions" (the
//!   ParticleFilter trap of §4.2).
//! * **Hybrid** instrumentation passes the *static* phase to the runtime,
//!   which combines it with current hardware status before deciding
//!   (Figure 8c) — `determine_active_conf(STA, DYN)`.
//!
//! Both forms are emitted as Astro intrinsics interpreted by the
//! execution engine; the policy table for hybrid mode lives in the
//! runtime (exactly as the paper's `libastro` does).

use crate::phase::{PhaseMap, ProgramPhase};
use astro_ir::{Instr, InstrKind, LibCall, Module, Value};

/// Which flavour of final instrumentation to emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodegenMode {
    /// Fixed configuration per program phase (Figure 8b).
    Static,
    /// Phase + runtime hardware state consulted at each decision point
    /// (Figure 8c).
    Hybrid,
}

/// The final code generator.
///
/// For static mode it needs the learned phase→configuration table; for
/// hybrid mode the table lives in the runtime, so only phase indices are
/// embedded in the code.
#[derive(Clone, Debug)]
pub struct FinalCodegen {
    /// Emission mode.
    pub mode: CodegenMode,
    /// Learned configuration index per program phase
    /// (indexed by [`ProgramPhase::index`]); used in static mode and as
    /// the runtime's fallback in hybrid mode.
    pub config_for_phase: [usize; ProgramPhase::COUNT],
}

impl FinalCodegen {
    /// Create a code generator from a learned phase→config table.
    pub fn new(mode: CodegenMode, config_for_phase: [usize; ProgramPhase::COUNT]) -> Self {
        FinalCodegen {
            mode,
            config_for_phase,
        }
    }

    fn decision(&self, phase: ProgramPhase) -> Instr {
        let (callee, imm) = match self.mode {
            CodegenMode::Static => (
                LibCall::AstroSetConfig,
                self.config_for_phase[phase.index()] as i64,
            ),
            CodegenMode::Hybrid => (LibCall::AstroHybridDecide, phase.index() as i64),
        };
        Instr {
            result: None,
            kind: InstrKind::CallLib {
                callee,
                args: vec![Value::int(imm)],
            },
        }
    }

    /// Emit the final instrumentation into `m`.
    ///
    /// * At every function entry: a decision for the function's phase.
    /// * Before every dormant library call: a decision for `Blocked`.
    /// * After it: a decision restoring the enclosing function's phase.
    ///
    /// Returns the number of decision points inserted.
    pub fn run(&self, m: &mut Module, phases: &PhaseMap) -> usize {
        let mut inserted = 0usize;
        for (fid, f) in m
            .functions
            .iter_mut()
            .enumerate()
            .map(|(i, f)| (astro_ir::FunctionId(i as u32), f))
        {
            let phase = phases.phase(fid);
            let entry = f.entry;
            f.block_mut(entry).instrs.insert(0, self.decision(phase));
            inserted += 1;

            for b in &mut f.blocks {
                let sites: Vec<usize> = b
                    .instrs
                    .iter()
                    .enumerate()
                    .filter(|(_, ins)| {
                        matches!(
                            &ins.kind,
                            InstrKind::CallLib { callee, .. } if callee.is_dormant_wait()
                        )
                    })
                    .map(|(i, _)| i)
                    .collect();
                for &i in sites.iter().rev() {
                    b.instrs.insert(i + 1, self.decision(phase));
                    b.instrs.insert(i, self.decision(ProgramPhase::Blocked));
                    inserted += 2;
                }
            }
        }
        inserted
    }
}

/// Remove every Astro intrinsic from `m`, recovering the original program
/// (the "Original" bars of Figure 11). Returns the number of removed
/// instructions.
pub fn strip_astro_instrumentation(m: &mut Module) -> usize {
    let mut removed = 0usize;
    for f in &mut m.functions {
        for b in &mut f.blocks {
            let before = b.instrs.len();
            b.instrs.retain(|ins| {
                !matches!(
                    &ins.kind,
                    InstrKind::CallLib { callee, .. } if callee.is_astro_intrinsic()
                )
            });
            removed += before - b.instrs.len();
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument_for_learning;
    use crate::phase::PhaseMap;
    use astro_ir::{FunctionBuilder, Opcode, Ty};

    fn demo() -> Module {
        let mut m = Module::new("demo");
        let mut main = FunctionBuilder::new("main", Ty::Void);
        main.counted_loop(8, |b| {
            let x = b.load(Ty::F64);
            b.fmul(Ty::F64, x, x);
        });
        main.call_lib(LibCall::BarrierWait, &[Value::int(0)]);
        main.ret(None);
        let f = m.add_function(main.finish());
        m.set_entry(f);
        m
    }

    #[test]
    fn static_mode_embeds_config_indices() {
        let mut m = demo();
        let phases = PhaseMap::compute(&m);
        let phase = phases.phase(m.entry.unwrap());
        let table = [3, 7, 11, 19];
        let cg = FinalCodegen::new(CodegenMode::Static, table);
        cg.run(&mut m, &phases);
        let f = m.function(m.entry.unwrap());
        let first = &f.block(f.entry).instrs[0];
        match &first.kind {
            InstrKind::CallLib { callee, args } => {
                assert_eq!(*callee, LibCall::AstroSetConfig);
                assert_eq!(args[0].as_const_int(), Some(table[phase.index()] as i64));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hybrid_mode_embeds_phase_indices() {
        let mut m = demo();
        let phases = PhaseMap::compute(&m);
        let phase = phases.phase(m.entry.unwrap());
        let cg = FinalCodegen::new(CodegenMode::Hybrid, [0; 4]);
        cg.run(&mut m, &phases);
        let f = m.function(m.entry.unwrap());
        let first = &f.block(f.entry).instrs[0];
        match &first.kind {
            InstrKind::CallLib { callee, args } => {
                assert_eq!(*callee, LibCall::AstroHybridDecide);
                assert_eq!(args[0].as_const_int(), Some(phase.index() as i64));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dormant_calls_bracketed_with_blocked_decision() {
        let mut m = demo();
        let phases = PhaseMap::compute(&m);
        let cg = FinalCodegen::new(CodegenMode::Static, [5, 6, 7, 8]);
        let inserted = cg.run(&mut m, &phases);
        // Entry + pair around the barrier.
        assert_eq!(inserted, 3);
        let f = m.function(m.entry.unwrap());
        // Find the barrier; the instruction before must request config 5
        // (Blocked's table entry).
        for b in &f.blocks {
            if let Some(pos) = b
                .instrs
                .iter()
                .position(|i| matches!(i.opcode(), Opcode::CallLib(LibCall::BarrierWait)))
            {
                match &b.instrs[pos - 1].kind {
                    InstrKind::CallLib { callee, args } => {
                        assert_eq!(*callee, LibCall::AstroSetConfig);
                        assert_eq!(args[0].as_const_int(), Some(5));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(m.verify(), Ok(()));
    }

    #[test]
    fn strip_removes_all_intrinsics_roundtrip() {
        let mut m = demo();
        let baseline = m.total_instrs();
        let phases = PhaseMap::compute(&m);
        instrument_for_learning(&mut m, &phases);
        FinalCodegen::new(CodegenMode::Hybrid, [0; 4]).run(&mut m, &phases);
        assert!(m.total_instrs() > baseline);
        strip_astro_instrumentation(&mut m);
        assert_eq!(m.total_instrs(), baseline);
        assert_eq!(m.verify(), Ok(()));
    }
}
