//! # Astro — compiler-assisted adaptive program scheduling for big.LITTLE
//!
//! Facade crate re-exporting the full Astro reproduction stack
//! (Novaes, Petrucci, Gamatié & Quintão Pereira, PPoPP 2019,
//! arXiv:1903.07038). See the README for an architecture overview and
//! `DESIGN.md` for the per-experiment index.
//!
//! The pieces, bottom-up:
//!
//! * [`ir`] — miniature compiler IR (the LLVM substitute);
//! * [`compiler`] — feature mining, phase classification, instrumentation
//!   and final code generation passes;
//! * [`hw`] — the big.LITTLE hardware model (configurations, caches,
//!   power, performance counters);
//! * [`exec`] — deterministic discrete-event execution engine plus OS
//!   schedulers (GTS baseline);
//! * [`rl`] — from-scratch Q-learning over a small neural network;
//! * [`core`] — the Astro system itself: states, rewards, the
//!   monitor–learn–adapt actuation loop, trace simulation, baselines and
//!   schedule synthesis;
//! * [`workloads`] — synthetic Parsec/Rodinia programs;
//! * [`fleet`] — multi-board, multi-tenant co-scheduling with a shared,
//!   warm-starting policy cache.

pub use astro_compiler as compiler;
pub use astro_core as core;
pub use astro_exec as exec;
pub use astro_fleet as fleet;
pub use astro_hw as hw;
pub use astro_ir as ir;
pub use astro_rl as rl;
pub use astro_workloads as workloads;

/// Convenience prelude importing the names used by nearly every example.
pub mod prelude {
    pub use astro_compiler::{FeatureVector, ProgramPhase};
    pub use astro_core::prelude::*;
    pub use astro_exec::machine::Machine;
    pub use astro_hw::config::HwConfig;
    pub use astro_ir::{FunctionBuilder, LibCall, Module, Ty};
}
