//! The full Astro pipeline on the paper's Figure 2 demo program: mine
//! features, learn over episodes, synthesise schedules, emit the final
//! static and hybrid binaries, and compare all three against GTS.
//!
//! Run with: `cargo run --release --example schedule_matmul`

use astro::core::pipeline::{AstroPipeline, PipelineConfig};
use astro::exec::machine::MachineParams;
use astro::exec::time::SimTime;
use astro::hw::boards::BoardSpec;
use astro::workloads::{matmul, InputSize};
use astro_compiler::ProgramPhase;

fn main() {
    let board = BoardSpec::odroid_xu4();
    let pipe = AstroPipeline::new(
        &board,
        PipelineConfig {
            machine: MachineParams {
                checkpoint_interval: SimTime::from_micros(400.0),
                min_config_dwell: SimTime::from_micros(800.0),
                ..MachineParams::default()
            },
            episodes: 4,
            ..Default::default()
        },
    );
    let module = matmul::build(InputSize::SimSmall);

    println!("training Astro on {} …", module.name);
    let trained = pipe.train(&module);

    println!("\nlearned static schedule (phase -> configuration):");
    let space = board.config_space();
    for phase in ProgramPhase::ALL {
        let idx = trained.static_schedule.config_for_phase[phase.index()];
        println!(
            "  {:<10} -> {}",
            phase.to_string(),
            space.from_index(idx).label()
        );
    }

    let static_mod = pipe.build_static(&module, &trained.static_schedule);
    let hybrid_mod = pipe.build_hybrid(&module);

    let gts = pipe.run_gts(&module, 1);
    let st = pipe.run_static(&static_mod, &trained.static_schedule, 1);
    let hy = pipe.run_hybrid(&hybrid_mod, &trained.hybrid_schedule, 1);

    println!("\nsystem        time (s)   energy (J)  config changes");
    for (name, r) in [("GTS", &gts), ("Astro static", &st), ("Astro hybrid", &hy)] {
        println!(
            "{name:<13} {:<10.5} {:<11.5} {}",
            r.wall_time_s, r.energy_j, r.config_changes
        );
    }
}
