//! Reproduce the Figure 1 methodology on any workload: run it under
//! every hardware configuration of the Odroid XU4 and print the
//! energy/time landscape with its Pareto-optimal points.
//!
//! Run with: `cargo run --release --example explore_configs [workload]`

use astro::core::pipeline::{AstroPipeline, PipelineConfig};
use astro::hw::boards::BoardSpec;
use astro::workloads::{by_name, InputSize};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "freqmine".into());
    let workload = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}; available:");
        for w in astro::workloads::all() {
            eprintln!("  {} ({})", w.name, w.suite);
        }
        std::process::exit(1);
    });

    let board = BoardSpec::odroid_xu4();
    let pipe = AstroPipeline::new(&board, PipelineConfig::default());
    let module = (workload.build)(InputSize::SimSmall);
    println!("config  wall(s)    cpu(s)     energy(J)");
    let mut best_t = (f64::INFINITY, String::new());
    let mut best_e = (f64::INFINITY, String::new());
    for cfg in board.config_space().all() {
        let r = pipe.run_fixed(&module, cfg, 42);
        println!(
            "{:<7} {:<10.6} {:<10.6} {:<10.6}",
            cfg.label(),
            r.wall_time_s,
            r.cpu_time_s,
            r.energy_j
        );
        if r.wall_time_s < best_t.0 {
            best_t = (r.wall_time_s, cfg.label());
        }
        if r.energy_j < best_e.0 {
            best_e = (r.energy_j, cfg.label());
        }
    }
    println!("\nbest wall time: {}   best energy: {}", best_t.1, best_e.1);
}
