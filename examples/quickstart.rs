//! Quickstart: build a tiny parallel program in the Astro IR, run it on
//! the simulated Odroid XU4 under the GTS scheduler, and print what the
//! paper's Monitor would see.
//!
//! Run with: `cargo run --release --example quickstart`

use astro::exec::machine::{Machine, MachineParams};
use astro::exec::program::compile;
use astro::exec::runtime::NullHooks;
use astro::exec::sched::gts::GtsScheduler;
use astro::hw::boards::BoardSpec;
use astro::hw::config::HwConfig;
use astro::ir::{FunctionBuilder, LibCall, Module, Ty, Value};

fn main() {
    // A 4-worker floating-point kernel with a final barrier.
    let mut module = Module::new("quickstart");
    let mut w = FunctionBuilder::new("worker", Ty::Void);
    w.counted_loop(200_000, |b| {
        let x = b.fmul(Ty::F64, Value::float(1.5), Value::float(2.5));
        b.fadd(Ty::F64, x, x);
    });
    w.call_lib(LibCall::BarrierWait, &[Value::int(0), Value::int(4)]);
    w.ret(None);
    let worker = module.add_function(w.finish());

    let mut main_fn = FunctionBuilder::new("main", Ty::Void);
    for _ in 0..4 {
        main_fn.call_lib(LibCall::ThreadSpawn, &[Value::func(worker)]);
    }
    main_fn.call_lib(LibCall::ThreadJoin, &[]);
    main_fn.ret(None);
    let main_id = module.add_function(main_fn.finish());
    module.set_entry(main_id);

    let program = compile(&module).expect("module compiles");
    let board = BoardSpec::odroid_xu4();
    let machine = Machine::new(&board, MachineParams::default());
    let mut sched = GtsScheduler::default();
    let mut hooks = NullHooks;
    let result = machine.run(&program, &mut sched, &mut hooks, HwConfig::new(4, 4));

    println!("program  : {}", module.name);
    println!("wall time: {:.6} s", result.wall_time_s);
    println!("cpu time : {:.6} s (sum over cores)", result.cpu_time_s);
    println!("energy   : {:.6} J", result.energy_j);
    println!("avg power: {:.3} W", result.avg_power_w());
    println!("instrs   : {}", result.instructions);
    println!("migrations (GTS): {}", result.migrations);
}
