//! Author a custom workload with the IR builder and inspect it through
//! Astro's compiler passes: mined features, phase classification, and
//! what the learning-mode instrumentation inserts.
//!
//! Run with: `cargo run --release --example custom_workload`

use astro::compiler::{extract_function_features, instrument_for_learning, PhaseMap};
use astro::ir::{printer, FunctionBuilder, LibCall, MemBehavior, Module, Ty, Value};

fn main() {
    let mut module = Module::new("custom");

    // A memory-streaming stage.
    let mut copy = FunctionBuilder::new("stream_copy", Ty::Void);
    copy.mem_behavior(MemBehavior::streaming(16 * 1024 * 1024));
    copy.counted_loop(100_000, |b| {
        let x = b.load(Ty::I64);
        b.store(Ty::I64, x);
    });
    copy.ret(None);
    let copy_id = module.add_function(copy.finish());

    // A compute stage with a critical section.
    let mut crunch = FunctionBuilder::new("crunch", Ty::Void);
    crunch.counted_loop(50_000, |b| {
        let x = b.fmul(Ty::F64, Value::float(3.14), Value::float(2.71));
        b.fadd(Ty::F64, x, x);
    });
    crunch.call_lib(LibCall::MutexLock, &[Value::int(0)]);
    crunch.store(Ty::I64, Value::int(1));
    crunch.call_lib(LibCall::MutexUnlock, &[Value::int(0)]);
    crunch.ret(None);
    let crunch_id = module.add_function(crunch.finish());

    let mut main_fn = FunctionBuilder::new("main", Ty::Void);
    main_fn.call_lib(LibCall::ReadFile, &[]);
    main_fn.call(copy_id, &[]);
    main_fn.call(crunch_id, &[]);
    main_fn.call_lib(LibCall::Sleep, &[Value::int(5_000)]);
    main_fn.ret(None);
    let main_id = module.add_function(main_fn.finish());
    module.set_entry(main_id);
    module.verify().expect("verifies");

    println!("== mined features & phases (§3.1.1) ==");
    let phases = PhaseMap::compute(&module);
    for (id, f) in module.iter() {
        let fv = extract_function_features(f);
        println!(
            "{:<12} io={:.2} mem={:.2} int={:.2} fp={:.2} locks={:.2} -> {}",
            f.name,
            fv.io_dens,
            fv.mem_dens,
            fv.int_dens,
            fv.fp_dens,
            fv.locks_dens,
            phases.phase(id)
        );
    }

    println!("\n== learning-mode instrumentation (Figure 8a) ==");
    let mut instrumented = module.clone();
    let report = instrument_for_learning(&mut instrumented, &phases);
    println!(
        "{} entry markers, {} toggle pairs inserted",
        report.entry_markers, report.toggle_pairs
    );
    println!("\n== instrumented main ==");
    let main_f = instrumented.function(instrumented.entry.unwrap());
    print!("{}", printer::print_function(main_f));
}
